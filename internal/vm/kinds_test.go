package vm

import (
	"testing"

	"herajvm/internal/cell"
	"herajvm/internal/classfile"
	"herajvm/internal/isa"
)

func threeKindTopology() cell.Topology {
	return cell.Topology{
		{Kind: isa.PPE, Count: 1},
		{Kind: isa.SPE, Count: 2},
		{Kind: isa.VPU, Count: 2},
	}
}

// A topology containing all three kinds must boot, schedule annotated
// workers and produce the same checksum as any other machine.
func TestThreeKindTopologyBootsAndSchedules(t *testing.T) {
	p := buildWorkerProgram(4, classfile.AnnRunOnSPE)
	vm, th := runMain(t, topoConfig(threeKindTopology()), p, "Main", "main")
	if got := int32(uint32(th.Result)); got != 1000 {
		t.Errorf("total = %d, want 1000", got)
	}
	if vm.Machine.InstrsOf(isa.SPE) == 0 {
		t.Error("RunOnSPE workers never ran on the SPEs")
	}
}

// FloatIntensive is a behavioural hint, not a kind pin: on a machine
// with a VPU the policy must route it to the VPU (the cheapest-FP
// registered kind), leaving the SPEs alone.
func TestFloatIntensiveRoutesToVPU(t *testing.T) {
	p := buildWorkerProgram(4, classfile.AnnFloatIntensive)
	vm, th := runMain(t, topoConfig(threeKindTopology()), p, "Main", "main")
	if got := int32(uint32(th.Result)); got != 1000 {
		t.Errorf("total = %d, want 1000", got)
	}
	if vm.Machine.InstrsOf(isa.VPU) == 0 {
		t.Error("FloatIntensive workers never ran on the VPUs")
	}
	if n := vm.Machine.InstrsOf(isa.SPE); n != 0 {
		t.Errorf("FloatIntensive workers leaked onto the SPEs (%d instrs)", n)
	}
	// On the classic PS3 shape the same program lands on the SPEs.
	vm2, _ := runMain(t, testConfig(), p, "Main", "main")
	if vm2.Machine.InstrsOf(isa.SPE) == 0 {
		t.Error("FloatIntensive workers never ran on the SPEs of a PS3 machine")
	}
}

// FixedPolicy pins threads to the VPU like any other kind. (The exact
// checksum is not asserted: pinning the main thread too means its final
// unsynchronized static read may be stale under the software-cache
// model, exactly as on a pinned SPE.)
func TestFixedPolicyOnVPU(t *testing.T) {
	cfg := topoConfig(cell.Topology{{Kind: isa.PPE, Count: 1}, {Kind: isa.VPU, Count: 2}})
	cfg.Policy = FixedPolicy{Kind: isa.VPU}
	p := buildWorkerProgram(2, "")
	vm, _ := runMain(t, cfg, p, "Main", "main")
	if vm.Machine.InstrsOf(isa.VPU) == 0 {
		t.Error("fixed-VPU policy never ran on the VPUs")
	}
	if vm.Machine.CoresOf(isa.PPE)[0].Stats.Instrs != 0 {
		t.Error("pinned threads executed bytecode on the PPE")
	}
	if vm.serviceKind() != isa.PPE {
		t.Errorf("service kind = %v, want PPE", vm.serviceKind())
	}
}

// A policy naming a kind the machine lacks must land on the service
// kind, both at thread start and at invocation time.
func TestAbsentKindFallsBackToServiceKind(t *testing.T) {
	cfg := topoConfig(cell.Topology{{Kind: isa.PPE, Count: 1}})
	cfg.Policy = FixedPolicy{Kind: isa.VPU}
	vm, th := runMain(t, cfg, buildWorkerProgram(2, ""), "Main", "main")
	if got := int32(uint32(th.Result)); got != 300 {
		t.Errorf("total = %d, want 300", got)
	}
	if vm.Machine.CoresOf(isa.PPE)[0].Stats.Instrs == 0 {
		t.Error("work did not fall back to the PPE")
	}
}

// The VM must not carve code regions or build compilers for kinds the
// topology lacks (lazy per-architecture compilation, §3.1).
func TestCompilersFollowTopology(t *testing.T) {
	vm, err := New(topoConfig(cell.Topology{{Kind: isa.PPE, Count: 1}}), newProg())
	if err != nil {
		t.Fatal(err)
	}
	if vm.Compiler(isa.PPE) == nil {
		t.Error("PPE compiler missing")
	}
	if vm.Compiler(isa.SPE) != nil || vm.Compiler(isa.VPU) != nil {
		t.Error("compilers exist for kinds the machine lacks")
	}
	vm3, err := New(topoConfig(threeKindTopology()), newProg())
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []isa.CoreKind{isa.PPE, isa.SPE, isa.VPU} {
		if vm3.Compiler(k) == nil {
			t.Errorf("three-kind machine lacks a %v compiler", k)
		}
	}
}
