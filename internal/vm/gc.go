package vm

import (
	"herajvm/internal/isa"
)

// gc runs a stop-the-world mark-and-sweep collection. As in the paper's
// evaluation configuration, the collector "only runs on the PPE core"
// (§4) — the service core, in registry terms: every local-store core
// first flushes and purges its software data cache (so the collector
// sees all writes and no core holds stale pointers to freed objects
// across the collection), all cores then stall to the barrier, and the
// service core performs the mark and sweep.
func (vm *VM) gc() {
	svc := vm.serviceCore()

	// Software data caches: write back dirty data, invalidate everything.
	for _, core := range vm.cores {
		if dc := vm.dcaches[core.Index]; dc != nil {
			core.Now = dc.Purge(core.Now)
		}
	}

	// Barrier: all cores reach the same point before the world stops.
	barrier := svc.Now
	for _, c := range vm.cores {
		if c.Now > barrier {
			barrier = c.Now
		}
	}

	marked := make(map[Ref]bool)
	var stack []Ref
	push := func(r Ref) {
		if r != 0 && vm.Heap.Contains(r) && !marked[r] {
			marked[r] = true
			stack = append(stack, r)
		}
	}

	// Roots: interned strings, statics, every thread's frames and Thread
	// objects.
	for _, r := range vm.interned {
		push(r)
	}
	for slot, isRef := range vm.staticRefs {
		if isRef {
			push(Ref(vm.Machine.Mem.Read64(vm.staticsBase + uint32(slot)*isa.SlotBytes)))
		}
	}
	for obj := range vm.byJavaObj {
		push(obj)
	}
	for obj, m := range vm.monitors {
		if m.owner != nil || len(m.blocked)+len(m.waiters) > 0 {
			push(obj)
		}
	}
	for _, meta := range vm.classes {
		push(meta.lockObj)
	}
	for _, r := range vm.pinned {
		push(r)
	}
	for _, t := range vm.threads {
		if t.State == StateTerminated {
			continue
		}
		if t.pendingHasVal && t.pendingIsRef {
			push(Ref(t.pendingVal))
		}
		if t.hasPendingThrow {
			push(t.pendingThrow)
		}
		if t.pendingNative != nil {
			for i, isRef := range t.pendingNative.ctx.ArgRefs {
				if isRef {
					push(Ref(t.pendingNative.ctx.Args[i]))
				}
			}
		}
		for _, f := range t.Frames {
			if f.Marker {
				continue
			}
			for i, isRef := range f.LocalRefs {
				if isRef {
					push(Ref(f.Locals[i]))
				}
			}
			for i := 0; i < f.SP; i++ {
				if f.StackRefs[i] {
					push(Ref(f.Stack[i]))
				}
			}
			push(f.SyncObj)
		}
	}

	// Mark: walk reference fields via class metadata; reference arrays
	// via their elements.
	for len(stack) > 0 {
		obj := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		id := vm.Heap.ClassIDOf(obj)
		if isArrayClassID(id) {
			if arrayKindOf(id) == isa.ElemRef {
				n := vm.Heap.LengthOf(obj)
				for i := uint32(0); i < n; i++ {
					push(Ref(vm.Machine.Mem.Read32(obj + isa.HeaderBytes + i*4)))
				}
			}
			continue
		}
		for cls := vm.classByID[id]; cls != nil; cls = cls.Super {
			for _, fd := range cls.Fields {
				if fd.Type.IsRef() {
					push(Ref(vm.Heap.FieldSlot(obj, fd.Slot)))
				}
			}
		}
	}

	liveBefore := vm.Heap.LiveObjects()
	freedObjects, _ := vm.Heap.Sweep(marked)

	// Collector cost runs on the service core; every other core stalls
	// until it finishes.
	cycles := vm.Cfg.GCPauseBase + vm.Cfg.GCPerObject*uint64(liveBefore)
	end := barrier + cycles
	svc.AdvanceTo(barrier)
	svc.Charge(isa.ClassMainMem, cycles)
	if svc.Now < end {
		svc.AdvanceTo(end)
	}
	for _, c := range vm.cores {
		if c != svc {
			c.AdvanceTo(end)
		}
	}
	vm.GCCount++
	vm.GCCycles += cycles
	// Bill the pause to the allocating job (the collection ran because
	// its allocation found the heap full), the way output and compiles
	// are already attributed — or to the unattributed bucket when the
	// allocation happened outside any job context.
	if j := vm.curJob; j != nil {
		j.Stats.GCPauses++
		j.Stats.GCCycles += cycles
	} else {
		vm.GCUnattributedCycles += cycles
	}
	_ = freedObjects
}
