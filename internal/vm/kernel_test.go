package vm

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"herajvm/internal/cell"
	"herajvm/internal/classfile"
	"herajvm/internal/isa"
)

// kernelTopology returns the showcase accelerator mix: one PPE, four
// SPEs and two VPUs — the pool planner must pick the VPUs (FPScore over
// cores×SPMD width: 1.25/(2·8) beats 2.25/(4·1)).
func kernelTopology() cell.Topology {
	return cell.Topology{
		{Kind: isa.PPE, Count: 1}, {Kind: isa.SPE, Count: 4}, {Kind: isa.VPU, Count: 2},
	}
}

// buildKernelProg builds the differential pair: a hera/Kernel body that
// folds in[i]*(i+7) into a synchronized accumulator per iteration
// (wrapping int add — commutative, so the total is invariant under any
// chunking), a "main" that launches it through Parallel.forRange, and a
// "scalar" entry that calls body.run(0, n) sequentially on the calling
// thread. Both read the same input and must produce the same total.
func buildKernelProg(n int32) *classfile.Program {
	p := newProg()
	kern := p.Lookup("hera/Kernel")
	parallel := p.Lookup("hera/Parallel")

	chk := p.NewClass("KChk", nil)
	totalF := chk.NewStaticField("total", classfile.Int)
	add := chk.NewMethod("add", classfile.FlagStatic|classfile.FlagSynchronized,
		classfile.Void, classfile.Int)
	{
		a := add.Asm()
		a.GetStatic(totalF)
		a.LoadI(0)
		a.AddI()
		a.PutStatic(totalF)
		a.RetVoid()
		a.MustBuild()
	}

	body := p.NewClass("ScaleBody", kern)
	inF := body.NewField("in", classfile.Ref)
	run := body.NewMethod("run", 0, classfile.Void, classfile.Int, classfile.Int)
	{
		// locals: 0=this 1=from 2=to 3=i 4=chk
		a := run.Asm()
		loop, done := a.NewLabel(), a.NewLabel()
		a.ConstI(0)
		a.StoreI(4)
		a.LoadI(1)
		a.StoreI(3)
		a.Bind(loop)
		a.LoadI(3)
		a.LoadI(2)
		a.IfICmpGE(done)
		a.LoadI(4)
		a.LoadRef(0)
		a.GetField(inF)
		a.LoadI(3)
		a.ALoad(classfile.ElemInt)
		a.LoadI(3)
		a.ConstI(7)
		a.AddI()
		a.MulI()
		a.AddI()
		a.StoreI(4)
		a.Inc(3, 1)
		a.Goto(loop)
		a.Bind(done)
		a.LoadI(4)
		a.InvokeStatic(add)
		a.RetVoid()
		a.MustBuild()
	}

	// buildEntry assembles the shared prologue — allocate and fill in[],
	// build the body — then lets each variant emit its launch.
	buildEntry := func(name string, launch func(a *classfile.Asm, runM *classfile.Method)) {
		cls := p.NewClass(name, nil)
		m := cls.NewMethod("main", classfile.FlagStatic, classfile.Int)
		// locals: 0=in 1=body 2=i
		a := m.Asm()
		a.ConstI(n)
		a.NewArray(classfile.ElemInt)
		a.StoreRef(0)
		loop, done := a.NewLabel(), a.NewLabel()
		a.ConstI(0)
		a.StoreI(2)
		a.Bind(loop)
		a.LoadI(2)
		a.ConstI(n)
		a.IfICmpGE(done)
		a.LoadRef(0)
		a.LoadI(2)
		a.LoadI(2)
		a.ConstI(13)
		a.MulI()
		a.ConstI(5)
		a.SubI()
		a.AStore(classfile.ElemInt)
		a.Inc(2, 1)
		a.Goto(loop)
		a.Bind(done)
		a.New(body)
		a.Dup()
		a.LoadRef(0)
		a.PutField(inF)
		a.StoreRef(1)
		launch(a, run)
		a.GetStatic(totalF)
		a.Ret()
		a.MustBuild()
	}
	buildEntry("KMain", func(a *classfile.Asm, runM *classfile.Method) {
		a.ConstI(0)
		a.ConstI(n)
		a.LoadRef(1)
		a.InvokeStatic(parallel.MethodByName("forRange"))
	})
	buildEntry("KScalar", func(a *classfile.Asm, runM *classfile.Method) {
		a.LoadRef(1)
		a.ConstI(0)
		a.ConstI(n)
		a.InvokeVirtual(runM)
	})
	return p
}

// kernelExpected mirrors the body in Go with the same 32-bit wrap.
func kernelExpected(n int32) int32 {
	var total int32
	for i := int32(0); i < n; i++ {
		total += (i*13 - 5) * (i + 7)
	}
	return total
}

func runKernelJob(t *testing.T, topo cell.Topology, entry string, n int32) (*VM, *Job) {
	t.Helper()
	cfg := testConfig()
	cfg.Machine.Topology = topo
	v, err := New(cfg, buildKernelProg(n))
	if err != nil {
		t.Fatal(err)
	}
	j, err := v.SubmitJob(JobSpec{Name: entry, Class: entry, Method: "main"})
	if err != nil {
		t.Fatal(err)
	}
	if err := v.WaitJob(j); err != nil {
		t.Fatal(err)
	}
	return v, j
}

// TestKernelLaunchComputesAndJoins: a forRange launch on the VPU-bearing
// topology fans out one pinned worker per VPU, produces the sequential
// answer, bills real staging DMA, and the caller resumes past the
// barrier.
func TestKernelLaunchComputesAndJoins(t *testing.T) {
	const n = 600
	v, j := runKernelJob(t, kernelTopology(), "KMain", n)
	if got := int32(uint32(j.Root().Result)); got != kernelExpected(n) {
		t.Errorf("kernel total = %d, want %d", got, kernelExpected(n))
	}
	if j.Stats.KernelLaunches != 1 {
		t.Errorf("KernelLaunches = %d, want 1", j.Stats.KernelLaunches)
	}
	if j.Stats.KernelWorkers != 2 { // the two VPUs win the pool score
		t.Errorf("KernelWorkers = %d, want the 2 VPU cores", j.Stats.KernelWorkers)
	}
	if j.Stats.KernelDMABytes == 0 {
		t.Error("no staging DMA billed on a local-store pool")
	}
	var vpuStaged, vpuInstrs uint64
	for _, c := range v.Machine.CoresOf(isa.VPU) {
		vpuStaged += c.Stats.DataStaged
		vpuInstrs += c.Stats.Instrs
	}
	if vpuStaged == 0 {
		t.Error("VPU cores staged no tiles")
	}
	if vpuInstrs == 0 {
		t.Error("the kernel never executed on the VPUs")
	}
	// Pinned workers must never migrate or be stolen.
	for _, th := range v.threads {
		if th.pinned && (th.Migrations != 0 || th.Steals != 0) {
			t.Errorf("%s: migrations=%d steals=%d, want 0/0", th, th.Migrations, th.Steals)
		}
	}
}

// TestKernelScalarEquivalence: the scalar and kernel variants produce
// the same total on both showcase topologies — the offload changes
// where and how fast, never what.
func TestKernelScalarEquivalence(t *testing.T) {
	const n = 600
	topos := map[string]cell.Topology{
		"ppe1-spe4-vpu2": kernelTopology(),
		"ppe1-spe6":      cell.PS3Topology(6),
	}
	want := kernelExpected(n)
	for name, topo := range topos {
		_, sj := runKernelJob(t, topo, "KScalar", n)
		_, kj := runKernelJob(t, topo, "KMain", n)
		s, k := int32(uint32(sj.Root().Result)), int32(uint32(kj.Root().Result))
		if s != want || k != want {
			t.Errorf("%s: scalar=%d kernel=%d, want both %d", name, s, k, want)
		}
		if sj.Stats.KernelLaunches != 0 {
			t.Errorf("%s: scalar variant launched %d kernels", name, sj.Stats.KernelLaunches)
		}
	}
}

// TestKernelDeterministicReplay: two fresh machines running the same
// launch agree cycle for cycle and byte for byte.
func TestKernelDeterministicReplay(t *testing.T) {
	const n = 400
	v1, j1 := runKernelJob(t, kernelTopology(), "KMain", n)
	v2, j2 := runKernelJob(t, kernelTopology(), "KMain", n)
	if j1.Cycles() != j2.Cycles() {
		t.Errorf("replay drifted: %d vs %d cycles", j1.Cycles(), j2.Cycles())
	}
	if j1.Stats != j2.Stats {
		t.Errorf("replay stats drifted:\n %+v\n %+v", j1.Stats, j2.Stats)
	}
	if c1, c2 := v1.Machine.MaxClock(), v2.Machine.MaxClock(); c1 != c2 {
		t.Errorf("machine clocks drifted: %d vs %d", c1, c2)
	}
}

// TestKernelEmptyRangeAndNullBody: an empty range is a no-op (the
// caller runs straight through); a null body traps the thread.
func TestKernelEmptyRangeAndNullBody(t *testing.T) {
	p := newProg()
	parallel := p.Lookup("hera/Parallel")
	kern := p.Lookup("hera/Kernel")

	empty := p.NewClass("EmptyLaunch", nil)
	{
		a := empty.NewMethod("main", classfile.FlagStatic, classfile.Int).Asm()
		a.ConstI(5)
		a.ConstI(5)
		a.New(kern)
		a.InvokeStatic(parallel.MethodByName("forRange"))
		a.ConstI(42)
		a.Ret()
		a.MustBuild()
	}
	nullBody := p.NewClass("NullLaunch", nil)
	{
		a := nullBody.NewMethod("main", classfile.FlagStatic, classfile.Int).Asm()
		a.ConstI(0)
		a.ConstI(5)
		a.Null()
		a.InvokeStatic(parallel.MethodByName("forRange"))
		a.ConstI(0)
		a.Ret()
		a.MustBuild()
	}

	cfg := testConfig()
	cfg.Machine.Topology = kernelTopology()
	v, err := New(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	j, err := v.SubmitJob(JobSpec{Name: "empty", Class: "EmptyLaunch", Method: "main"})
	if err != nil {
		t.Fatal(err)
	}
	if err := v.WaitJob(j); err != nil {
		t.Fatalf("empty range: %v", err)
	}
	if got := int32(uint32(j.Root().Result)); got != 42 {
		t.Errorf("empty-range result = %d, want 42", got)
	}
	if j.Stats.KernelLaunches != 0 || j.Stats.KernelWorkers != 0 {
		t.Errorf("empty range spawned workers: %+v", j.Stats)
	}

	nj, err := v.SubmitJob(JobSpec{Name: "null", Class: "NullLaunch", Method: "main"})
	if err != nil {
		t.Fatal(err)
	}
	if err := v.WaitJob(nj); err == nil {
		t.Error("null body did not trap")
	} else if te, ok := err.(*TrapError); !ok || te.Kind != "NullPointerException" {
		t.Errorf("null body trapped with %v, want NullPointerException", err)
	}
}

// TestFreezeJobRefusesInFlightKernel: a job holding an incomplete SPMD
// barrier reports ErrNotFreezable — it neither wedges nor captures a
// torn barrier — and still runs to the right answer afterwards.
func TestFreezeJobRefusesInFlightKernel(t *testing.T) {
	const n = 4000
	cfg := testConfig()
	cfg.Machine.Topology = kernelTopology()
	v, err := New(cfg, buildKernelProg(n))
	if err != nil {
		t.Fatal(err)
	}
	j, err := v.SubmitJob(JobSpec{Name: "kmain", Class: "KMain", Method: "main"})
	if err != nil {
		t.Fatal(err)
	}
	// Drive until the launch is in flight (the caller parks at the
	// barrier within the first quanta; workers then run for a while).
	var tries int
	for j.kernels == 0 {
		if tries++; tries > 10000 {
			t.Fatal("launch never went in flight")
		}
		if err := v.RunUntil(v.Machine.MaxClock() + 1); err != nil {
			t.Fatal(err)
		}
		if j.done {
			t.Fatal("job completed before the freeze probe")
		}
	}
	if _, err := v.FreezeJob(context.Background(), j); !errors.Is(err, ErrNotFreezable) {
		t.Fatalf("freeze mid-kernel: err = %v, want ErrNotFreezable", err)
	}
	if j.Frozen() {
		t.Fatal("refused freeze left the job marked frozen")
	}
	if err := v.WaitJob(j); err != nil {
		t.Fatal(err)
	}
	if got := int32(uint32(j.Root().Result)); got != kernelExpected(n) {
		t.Errorf("post-refusal total = %d, want %d", got, kernelExpected(n))
	}
}

// TestKernelSpeedup: the pinned SPMD fan-out must beat the sequential
// scalar run of the same body on simulated cycles — the subsystem's
// reason to exist, pinned here so perf regressions fail loudly.
func TestKernelSpeedup(t *testing.T) {
	const n = 2000
	_, sj := runKernelJob(t, kernelTopology(), "KScalar", n)
	_, kj := runKernelJob(t, kernelTopology(), "KMain", n)
	s, k := sj.Cycles(), kj.Cycles()
	if k == 0 || s == 0 {
		t.Fatal("jobs did not complete")
	}
	speedup := float64(s) / float64(k)
	if speedup < 1.2 {
		t.Errorf("kernel speedup %.2fx (scalar %d vs kernel %d cycles), want >= 1.2x",
			speedup, s, k)
	}
	t.Log(fmt.Sprintf("kernel offload speedup: %.2fx (scalar %d, kernel %d cycles)", speedup, s, k))
}
