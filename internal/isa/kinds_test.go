package isa

import (
	"strings"
	"testing"
)

// The numeric kind values are load-bearing: topology order, scheduler
// tie-breaks and the memory-layout carve order all follow registration
// order. Lock it down.
func TestKindValuesStable(t *testing.T) {
	if PPE != 0 || SPE != 1 || VPU != 2 {
		t.Fatalf("kind values: PPE=%d SPE=%d VPU=%d, want 0/1/2", PPE, SPE, VPU)
	}
	if NumKinds() < 3 {
		t.Fatalf("NumKinds() = %d, want >= 3", NumKinds())
	}
	kinds := CoreKinds()
	for i, k := range kinds {
		if int(k) != i {
			t.Errorf("CoreKinds()[%d] = %d, want %d", i, k, i)
		}
	}
}

func TestKindString(t *testing.T) {
	cases := map[CoreKind]string{PPE: "PPE", SPE: "SPE", VPU: "VPU"}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
	// Out-of-range values must render via the registry fallback, not
	// masquerade as a real kind.
	if got := CoreKind(200).String(); got != "kind(200)" {
		t.Errorf("unknown kind String() = %q, want %q", got, "kind(200)")
	}
	if CoreKind(200).Known() {
		t.Error("kind 200 reports Known()")
	}
}

func TestParseCoreKind(t *testing.T) {
	for _, s := range []string{"ppe", "PPE", "Spe", "vpu", "VPU"} {
		k, err := ParseCoreKind(s)
		if err != nil {
			t.Errorf("ParseCoreKind(%q): %v", s, err)
		}
		if !strings.EqualFold(k.String(), s) {
			t.Errorf("ParseCoreKind(%q) = %v", s, k)
		}
	}
	for _, s := range []string{"", "gpu", "ppe ", "spe2"} {
		if _, err := ParseCoreKind(s); err == nil {
			t.Errorf("ParseCoreKind(%q) should fail", s)
		}
	}
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", name)
		}
	}()
	f()
}

func TestRegisterRejectsBadSpecs(t *testing.T) {
	mustPanic(t, "duplicate name", func() {
		Register(KindSpec{Name: "spe", NewCosts: SPECosts}) // case-insensitive dup
	})
	mustPanic(t, "empty name", func() {
		Register(KindSpec{NewCosts: SPECosts})
	})
	mustPanic(t, "missing cost table", func() {
		Register(KindSpec{Name: "NoCosts"})
	})
	// Failed registrations must not leave partial entries behind.
	if _, err := ParseCoreKind("NoCosts"); err == nil {
		t.Error("failed registration leaked into the registry")
	}
}

func TestKindCapabilities(t *testing.T) {
	if !PPE.HostsServices() || PPE.UsesLocalStore() || !PPE.PredictsBranches() {
		t.Error("PPE capabilities wrong: want services + hardware caches + predictor")
	}
	for _, k := range []CoreKind{SPE, VPU} {
		if k.HostsServices() || !k.UsesLocalStore() || k.PredictsBranches() {
			t.Errorf("%v capabilities wrong: want local store, no services, no predictor", k)
		}
	}
	// Unknown kinds have no capabilities at all, and the score queries
	// fail with the registry's descriptive panic, not a raw index error.
	if CoreKind(250).HostsServices() || CoreKind(250).UsesLocalStore() || CoreKind(250).PredictsBranches() {
		t.Error("unknown kind claims capabilities")
	}
	mustPanic(t, "FPScore on unknown kind", func() { CoreKind(250).FPScore() })
	mustPanic(t, "MemScore on unknown kind", func() { CoreKind(250).MemScore() })
	mustPanic(t, "CodePressure on unknown kind", func() { CoreKind(250).CodePressure() })
}

// The predicted-cost scores drive placement: FP work must rank
// VPU < SPE < PPE, memory work must rank the PPE cheapest, and code
// pressure must rank PPE < SPE < VPU (what the paper's Figure 7 and the
// VPU's wide encoding imply).
func TestKindScoresOrdered(t *testing.T) {
	if !(VPU.FPScore() < SPE.FPScore() && SPE.FPScore() < PPE.FPScore()) {
		t.Errorf("FPScore order: VPU=%.2f SPE=%.2f PPE=%.2f, want VPU < SPE < PPE",
			VPU.FPScore(), SPE.FPScore(), PPE.FPScore())
	}
	if !(PPE.MemScore() < SPE.MemScore() && PPE.MemScore() < VPU.MemScore()) {
		t.Errorf("MemScore order: PPE=%.2f SPE=%.2f VPU=%.2f, want PPE cheapest",
			PPE.MemScore(), SPE.MemScore(), VPU.MemScore())
	}
	if !(PPE.CodePressure() < SPE.CodePressure() && SPE.CodePressure() < VPU.CodePressure()) {
		t.Errorf("CodePressure order: PPE=%.2f SPE=%.2f VPU=%.2f, want PPE < SPE < VPU",
			PPE.CodePressure(), SPE.CodePressure(), VPU.CodePressure())
	}
}

// Costs must hand each caller a fresh table: compilers calibrate their
// own copies and must not bleed into the registry's cached scores.
func TestCostsReturnsFreshTables(t *testing.T) {
	a, b := Costs(VPU), Costs(VPU)
	if a == b {
		t.Fatal("Costs returned a shared table")
	}
	before := VPU.FPScore()
	a.OpCost[OpAddF] = 999
	if VPU.FPScore() != before {
		t.Error("mutating a Costs() result changed the registry's cached score")
	}
}

// TestMigrateAffinity: the built-in Cell kinds are neutral migration
// targets (unset spec -> 1.0) while the VPU is priced as reluctant —
// the knob the cross-kind migration gate scales predicted cost by.
func TestMigrateAffinity(t *testing.T) {
	if got := PPE.MigrateAffinity(); got != 1 {
		t.Errorf("PPE affinity = %v, want the neutral 1", got)
	}
	if got := SPE.MigrateAffinity(); got != 1 {
		t.Errorf("SPE affinity = %v, want the neutral 1", got)
	}
	if got := VPU.MigrateAffinity(); got <= 1 {
		t.Errorf("VPU affinity = %v, want > 1 (reluctant target)", got)
	}
}

// TestSPMDWidth: scalar kinds normalize to width 1; the VPU advertises
// its wide lanes to the kernel launch planner.
func TestSPMDWidth(t *testing.T) {
	if got := PPE.SPMDWidth(); got != 1 {
		t.Errorf("PPE SPMD width = %d, want 1", got)
	}
	if got := SPE.SPMDWidth(); got != 1 {
		t.Errorf("SPE SPMD width = %d, want 1", got)
	}
	if got := VPU.SPMDWidth(); got <= 1 {
		t.Errorf("VPU SPMD width = %d, want > 1", got)
	}
}
