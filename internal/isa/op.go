package isa

// Op is a simulated machine opcode. The JIT backends lower each Java
// bytecode into one or more Instrs carrying these opcodes; the VM's
// executor interprets them while the machine model charges cycles.
//
// The vocabulary is shared between the PPE and SPE backends; the backends
// differ in which sequences they emit, the encoded size of each op, and
// the cycle cost assigned to each op (see CostTable).
type Op uint8

const (
	// OpNop does nothing. Used for padding and alignment.
	OpNop Op = iota

	// --- Operand stack and local variables (ClassStack) ---

	// OpPushConst pushes a 64-bit literal (A = low 32 bits, B = high 32).
	OpPushConst
	// OpLoadLocal pushes local variable A.
	OpLoadLocal
	// OpStoreLocal pops into local variable A.
	OpStoreLocal
	// OpPop discards the top of stack.
	OpPop
	// OpPop2 discards the top two stack values.
	OpPop2
	// OpDup duplicates the top of stack.
	OpDup
	// OpDupX1 duplicates the top value beneath the second value.
	OpDupX1
	// OpDupX2 duplicates the top value beneath the third value.
	OpDupX2
	// OpDup2 duplicates the top two stack values.
	OpDup2
	// OpSwap exchanges the top two stack values.
	OpSwap
	// OpIncLocal adds immediate B to integer local A (JVM iinc).
	OpIncLocal

	// --- Integer ALU (ClassInt) ---

	OpAddI
	OpSubI
	OpMulI
	// OpDivI divides; on the SPE this is a software sequence (the SPU has
	// no scalar integer divider) and costs accordingly.
	OpDivI
	OpRemI
	OpNegI
	OpAndI
	OpOrI
	OpXorI
	OpShlI
	OpShrI
	OpUShrI

	// --- Long ALU (ClassInt) ---

	OpAddL
	OpSubL
	OpMulL
	OpDivL
	OpRemL
	OpNegL
	OpAndL
	OpOrL
	OpXorL
	OpShlL
	OpShrL
	OpUShrL
	// OpCmpL pushes -1/0/1 comparing two longs (JVM lcmp).
	OpCmpL

	// --- Float arithmetic (ClassFloat) ---

	OpAddF
	OpSubF
	OpMulF
	OpDivF
	OpNegF
	OpRemF
	// OpCmpF compares floats; A = result pushed when either is NaN
	// (-1 for fcmpl, +1 for fcmpg).
	OpCmpF

	// --- Double arithmetic (ClassFloat) ---

	OpAddD
	OpSubD
	OpMulD
	OpDivD
	OpNegD
	OpRemD
	// OpCmpD compares doubles; A = NaN result as for OpCmpF.
	OpCmpD

	// --- Conversions (ClassInt or ClassFloat per table) ---

	OpI2L
	OpI2F
	OpI2D
	OpL2I
	OpL2F
	OpL2D
	OpF2I
	OpF2L
	OpF2D
	OpD2I
	OpD2L
	OpD2F
	OpI2B
	OpI2C
	OpI2S

	// --- Control transfer (ClassBranch) ---

	// OpGoto jumps unconditionally to instruction index A.
	OpGoto
	// OpIf pops an int and jumps to B when it satisfies condition A
	// (Cond*) compared against zero.
	OpIf
	// OpIfCmpI pops two ints and jumps to B when they satisfy condition A.
	OpIfCmpI
	// OpIfCmpRef pops two references and jumps to B on CondEQ/CondNE (A).
	OpIfCmpRef
	// OpIfNull pops a reference; jumps to B when it is null (A=0) or
	// non-null (A=1).
	OpIfNull
	// OpTableSwitch pops an index; A = low bound, B = default target,
	// C = index of the jump table in the method's Tables.
	OpTableSwitch
	// OpLookupSwitch pops a key; B = default target, C = index of the
	// key/target table in the method's Tables (keys at even positions).
	OpLookupSwitch

	// --- Calls and returns (ClassBranch; code-cache interaction on SPE) ---

	// OpCallStatic invokes the method with global method ID A.
	OpCallStatic
	// OpCallSpecial invokes method ID A non-virtually (constructors,
	// private methods, super calls).
	OpCallSpecial
	// OpCallVirtual pops a receiver and invokes vtable slot A; B is the
	// statically resolved declaring-class ID (for diagnostics).
	OpCallVirtual
	// OpCallInterface pops a receiver and invokes the interface method
	// with global interface-method ID A via itable search.
	OpCallInterface
	// OpReturn returns from the current method; A=1 when a value is
	// returned on the operand stack.
	OpReturn

	// --- Heap access (ClassLocalMem / ClassMainMem, charged dynamically) ---

	// OpGetField pops a reference and pushes field at byte offset A.
	// B carries FlagVolatile / FlagRef / width bits (see field flags).
	OpGetField
	// OpPutField pops value then reference, stores at byte offset A.
	OpPutField
	// OpGetStatic pushes static slot A (B = flags).
	OpGetStatic
	// OpPutStatic pops into static slot A (B = flags).
	OpPutStatic
	// OpALoad pops index and array ref, pushes element (A = ElemKind).
	OpALoad
	// OpAStore pops value, index, array ref and stores (A = ElemKind).
	OpAStore
	// OpArrayLen pops an array reference and pushes its length.
	OpArrayLen

	// --- Allocation and type tests ---

	// OpNew allocates an instance of class ID A and pushes the reference.
	OpNew
	// OpNewArray pops a length and allocates a primitive array of
	// ElemKind A.
	OpNewArray
	// OpANewArray pops a length and allocates a reference array whose
	// element class is A.
	OpANewArray
	// OpInstanceOf pops a reference, pushes 1 if instance of class A.
	OpInstanceOf
	// OpCheckCast traps unless top of stack is null or instance of A.
	OpCheckCast

	// --- Synchronisation (JMM purge/flush points on the SPE) ---

	// OpMonitorEnter pops a reference and acquires its monitor. On the
	// SPE the software data cache is purged after acquisition (§3.2.1).
	OpMonitorEnter
	// OpMonitorExit pops a reference and releases its monitor. On the
	// SPE dirty cached data is flushed before release (§3.2.1).
	OpMonitorExit

	// OpThrow pops a throwable reference and unwinds to a handler (or
	// terminates the thread with a trap if none exists).
	OpThrow

	// NumOps is the number of machine opcodes.
	NumOps = iota
)

// Condition codes for OpIf / OpIfCmpI / OpIfCmpRef.
const (
	CondEQ int32 = iota
	CondNE
	CondLT
	CondGE
	CondGT
	CondLE
)

// Field/static access flag bits carried in Instr.B of Get/Put ops.
const (
	// FlagVolatile marks a volatile access: the SPE purges its data cache
	// before a volatile read and flushes dirty data before a volatile
	// write, per the paper's coherence protocol.
	FlagVolatile int32 = 1 << iota
	// FlagRef marks the accessed slot as holding a reference (used by the
	// executor to maintain precise GC reference maps).
	FlagRef
)

// ElemKind identifies a primitive or reference array element type and its
// in-memory width. The values match the operand encoding used by
// OpALoad/OpAStore/OpNewArray.
type ElemKind uint8

const (
	ElemBool ElemKind = iota
	ElemByte
	ElemChar
	ElemShort
	ElemInt
	ElemFloat
	ElemLong
	ElemDouble
	ElemRef

	// NumElemKinds is the number of array element kinds.
	NumElemKinds = int(ElemRef) + 1
)

var elemSizes = [NumElemKinds]uint32{1, 1, 2, 2, 4, 4, 8, 8, 4}

// Size returns the in-memory width of an array element of this kind in
// bytes. References are 4 bytes (the simulated machine is 32-bit
// addressed, like the PS3's 256 MB Cell configuration).
func (k ElemKind) Size() uint32 { return elemSizes[k] }

var elemNames = [NumElemKinds]string{
	"bool", "byte", "char", "short", "int", "float", "long", "double", "ref",
}

// String returns the element kind's Java-ish name.
func (k ElemKind) String() string {
	if int(k) < NumElemKinds {
		return elemNames[k]
	}
	return "?"
}

var opNames = [NumOps]string{
	OpNop: "nop", OpPushConst: "pushconst", OpLoadLocal: "loadlocal",
	OpStoreLocal: "storelocal", OpPop: "pop", OpPop2: "pop2", OpDup: "dup",
	OpDupX1: "dup_x1", OpDupX2: "dup_x2", OpDup2: "dup2", OpSwap: "swap",
	OpIncLocal: "inclocal",
	OpAddI:     "addi", OpSubI: "subi", OpMulI: "muli", OpDivI: "divi",
	OpRemI: "remi", OpNegI: "negi", OpAndI: "andi", OpOrI: "ori",
	OpXorI: "xori", OpShlI: "shli", OpShrI: "shri", OpUShrI: "ushri",
	OpAddL: "addl", OpSubL: "subl", OpMulL: "mull", OpDivL: "divl",
	OpRemL: "reml", OpNegL: "negl", OpAndL: "andl", OpOrL: "orl",
	OpXorL: "xorl", OpShlL: "shll", OpShrL: "shrl", OpUShrL: "ushrl",
	OpCmpL: "cmpl",
	OpAddF: "addf", OpSubF: "subf", OpMulF: "mulf", OpDivF: "divf",
	OpNegF: "negf", OpRemF: "remf", OpCmpF: "cmpf",
	OpAddD: "addd", OpSubD: "subd", OpMulD: "muld", OpDivD: "divd",
	OpNegD: "negd", OpRemD: "remd", OpCmpD: "cmpd",
	OpI2L: "i2l", OpI2F: "i2f", OpI2D: "i2d", OpL2I: "l2i", OpL2F: "l2f",
	OpL2D: "l2d", OpF2I: "f2i", OpF2L: "f2l", OpF2D: "f2d", OpD2I: "d2i",
	OpD2L: "d2l", OpD2F: "d2f", OpI2B: "i2b", OpI2C: "i2c", OpI2S: "i2s",
	OpGoto: "goto", OpIf: "if", OpIfCmpI: "ifcmpi", OpIfCmpRef: "ifcmpref",
	OpIfNull: "ifnull", OpTableSwitch: "tableswitch",
	OpLookupSwitch: "lookupswitch",
	OpCallStatic:   "callstatic", OpCallSpecial: "callspecial",
	OpCallVirtual: "callvirtual", OpCallInterface: "callinterface",
	OpReturn:   "return",
	OpGetField: "getfield", OpPutField: "putfield", OpGetStatic: "getstatic",
	OpPutStatic: "putstatic", OpALoad: "aload", OpAStore: "astore",
	OpArrayLen: "arraylen",
	OpNew:      "new", OpNewArray: "newarray", OpANewArray: "anewarray",
	OpInstanceOf: "instanceof", OpCheckCast: "checkcast",
	OpMonitorEnter: "monitorenter", OpMonitorExit: "monitorexit",
	OpThrow: "throw",
}

// String returns the opcode mnemonic.
func (o Op) String() string {
	if int(o) < NumOps && opNames[o] != "" {
		return opNames[o]
	}
	return "op?"
}

// classOf maps each opcode to its static operation class. Heap-access
// opcodes are assigned ClassLocalMem here; the executor re-classifies the
// dynamic portion of their cost (DMA waits, cache-line misses) as
// ClassMainMem based on actual cache behaviour.
var classOf = [NumOps]OpClass{
	OpNop: ClassStack, OpPushConst: ClassStack, OpLoadLocal: ClassStack,
	OpStoreLocal: ClassStack, OpPop: ClassStack, OpPop2: ClassStack,
	OpDup: ClassStack, OpDupX1: ClassStack, OpDupX2: ClassStack,
	OpDup2: ClassStack, OpSwap: ClassStack, OpIncLocal: ClassStack,
	OpAddI: ClassInt, OpSubI: ClassInt, OpMulI: ClassInt, OpDivI: ClassInt,
	OpRemI: ClassInt, OpNegI: ClassInt, OpAndI: ClassInt, OpOrI: ClassInt,
	OpXorI: ClassInt, OpShlI: ClassInt, OpShrI: ClassInt, OpUShrI: ClassInt,
	OpAddL: ClassInt, OpSubL: ClassInt, OpMulL: ClassInt, OpDivL: ClassInt,
	OpRemL: ClassInt, OpNegL: ClassInt, OpAndL: ClassInt, OpOrL: ClassInt,
	OpXorL: ClassInt, OpShlL: ClassInt, OpShrL: ClassInt, OpUShrL: ClassInt,
	OpCmpL: ClassInt,
	OpAddF: ClassFloat, OpSubF: ClassFloat, OpMulF: ClassFloat,
	OpDivF: ClassFloat, OpNegF: ClassFloat, OpRemF: ClassFloat,
	OpCmpF: ClassFloat,
	OpAddD: ClassFloat, OpSubD: ClassFloat, OpMulD: ClassFloat,
	OpDivD: ClassFloat, OpNegD: ClassFloat, OpRemD: ClassFloat,
	OpCmpD: ClassFloat,
	OpI2L:  ClassInt, OpI2F: ClassFloat, OpI2D: ClassFloat, OpL2I: ClassInt,
	OpL2F: ClassFloat, OpL2D: ClassFloat, OpF2I: ClassFloat,
	OpF2L: ClassFloat, OpF2D: ClassFloat, OpD2I: ClassFloat,
	OpD2L: ClassFloat, OpD2F: ClassFloat, OpI2B: ClassInt, OpI2C: ClassInt,
	OpI2S:  ClassInt,
	OpGoto: ClassBranch, OpIf: ClassBranch, OpIfCmpI: ClassBranch,
	OpIfCmpRef: ClassBranch, OpIfNull: ClassBranch,
	OpTableSwitch: ClassBranch, OpLookupSwitch: ClassBranch,
	OpCallStatic: ClassBranch, OpCallSpecial: ClassBranch,
	OpCallVirtual: ClassBranch, OpCallInterface: ClassBranch,
	OpReturn:   ClassBranch,
	OpGetField: ClassLocalMem, OpPutField: ClassLocalMem,
	OpGetStatic: ClassLocalMem, OpPutStatic: ClassLocalMem,
	OpALoad: ClassLocalMem, OpAStore: ClassLocalMem,
	OpArrayLen: ClassLocalMem,
	OpNew:      ClassMainMem, OpNewArray: ClassMainMem,
	OpANewArray:  ClassMainMem,
	OpInstanceOf: ClassInt, OpCheckCast: ClassInt,
	OpMonitorEnter: ClassMainMem, OpMonitorExit: ClassMainMem,
	OpThrow: ClassBranch,
}

// Class returns the static operation class of an opcode.
func (o Op) Class() OpClass {
	if int(o) < NumOps {
		return classOf[o]
	}
	return ClassInt
}
