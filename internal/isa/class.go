// Package isa defines the simulated machine-level instruction
// representation shared by the PPE and SPE JIT backends, the operation
// classes used for cycle accounting (the categories of the paper's
// Figure 5), and the per-core cost tables that calibrate the simulator.
//
// Hera-JVM compiles Java bytecode to two different instruction sets (the
// PPE's PowerPC ISA and the SPE's SPU ISA). This reproduction replaces
// both with a single RISC-like semantic vocabulary (Op); the two backends
// differ in instruction *selection* (how many instructions a bytecode
// expands to, and which), in encoded size, and in cycle cost, which is
// what the paper's evaluation is sensitive to.
package isa

// OpClass buckets executed cycles by the kind of work an instruction
// performs. These are exactly the categories of Figure 5 of the paper
// ("Proportion of cycles per operation type"): floating point, integer,
// branch, stack, local memory and main memory.
type OpClass uint8

const (
	// ClassInt covers integer and long ALU work.
	ClassInt OpClass = iota
	// ClassFloat covers float and double arithmetic and conversions.
	ClassFloat
	// ClassBranch covers control transfer: branches, switches, and the
	// control portion of calls and returns.
	ClassBranch
	// ClassStack covers operand-stack and local-variable traffic
	// (register/stack-frame movement in the compiled code).
	ClassStack
	// ClassLocalMem covers accesses satisfied by fast local memory: SPE
	// local-store hits (software data/code cache hits) and PPE L1 hits.
	ClassLocalMem
	// ClassMainMem covers accesses that reach main memory: SPE DMA
	// transfers (software cache misses) and PPE cache-miss traffic.
	ClassMainMem

	// NumClasses is the number of operation classes.
	NumClasses = int(ClassMainMem) + 1
)

var classNames = [NumClasses]string{
	"Integer",
	"Floating Point",
	"Branch",
	"Stack",
	"Local Memory",
	"Main Memory",
}

// String returns the human-readable class name used in figure output.
func (c OpClass) String() string {
	if int(c) < NumClasses {
		return classNames[c]
	}
	return "Unknown"
}
