package isa

import "fmt"

// Instr is one simulated machine instruction as produced by a JIT
// backend. A/B/C carry opcode-specific operands (immediates, local slots,
// resolved field offsets, branch targets as instruction indices, method
// IDs, table indices). Cost is the static cycle cost assigned by the
// backend's cost table; memory opcodes incur additional dynamic cycles
// determined by the machine's memory system at execution time.
type Instr struct {
	Op   Op
	A    int32
	B    int32
	C    int32
	Cost uint16
}

// String formats the instruction for disassembly listings.
func (i Instr) String() string {
	switch i.Op {
	case OpPushConst:
		return fmt.Sprintf("%-12s %#x", i.Op, uint64(uint32(i.A))|uint64(uint32(i.B))<<32)
	case OpLoadLocal, OpStoreLocal:
		return fmt.Sprintf("%-12s l%d", i.Op, i.A)
	case OpIncLocal:
		return fmt.Sprintf("%-12s l%d, %+d", i.Op, i.A, i.B)
	case OpGoto:
		return fmt.Sprintf("%-12s @%d", i.Op, i.A)
	case OpIf, OpIfCmpI, OpIfCmpRef, OpIfNull:
		return fmt.Sprintf("%-12s c%d, @%d", i.Op, i.A, i.B)
	case OpCallStatic, OpCallSpecial, OpCallVirtual, OpCallInterface:
		return fmt.Sprintf("%-12s #%d", i.Op, i.A)
	case OpGetField, OpPutField, OpGetStatic, OpPutStatic:
		return fmt.Sprintf("%-12s +%d (f%#x)", i.Op, i.A, i.B)
	case OpNew, OpANewArray, OpInstanceOf, OpCheckCast:
		return fmt.Sprintf("%-12s cls%d", i.Op, i.A)
	case OpNewArray, OpALoad, OpAStore:
		return fmt.Sprintf("%-12s %s", i.Op, ElemKind(i.A))
	default:
		return i.Op.String()
	}
}

// Word is a raw 64-bit value slot as held in locals and on the operand
// stack. Typed opcodes reinterpret the bits (int32 in the low half, raw
// IEEE-754 bits for float/double, a 32-bit heap address for references).
type Word = uint64
