package isa

import (
	"fmt"
	"strings"
)

// CoreKind identifies one registered processor core kind. Kinds are
// small dense integers assigned in registration order, so they index
// arrays and maps cheaply; the registry below maps each kind to its
// KindSpec descriptor. The VM never switches on a particular kind —
// everything it needs to know (memory model, branch model, cost table,
// runtime-service capability) is a capability query on the spec, which
// is what lets a new kind be added by data alone.
type CoreKind uint8

// KindSpec describes one core kind: its name, how to build its cost
// table, and the capabilities that drive every kind-dependent decision
// in the machine model and the runtime.
type KindSpec struct {
	// Name is the canonical upper-case kind name ("PPE", "SPE", ...);
	// topology strings and ParseCoreKind match it case-insensitively.
	Name string

	// NewCosts builds a fresh cost table for the kind (static per-opcode
	// cycle costs, encoded sizes, branch penalty, prologue shape).
	NewCosts func() *CostTable

	// LocalStore selects the kind's memory model: true means an
	// SPE-style scratchpad local store reached through software data and
	// code caches plus DMA; false means hardware-coherent caches in
	// front of main memory.
	LocalStore bool

	// HostsServices reports whether the kind can host the runtime
	// services: the collector, the syscall mailbox service thread and OS
	// support. Every bootable topology needs at least one core of a
	// service-capable kind.
	HostsServices bool

	// BranchPredictor selects the branch model: true gives each core a
	// hardware predictor (mispredicts charged probabilistically); false
	// models static compiler hints, charging the cost table's
	// BranchTakenExtra on every taken conditional branch.
	BranchPredictor bool

	// MemAccessCycles estimates the average dynamic cost of one heap
	// access on this kind (hardware-cache hit latency, or software-cache
	// probe plus amortised DMA). Placement policies rank kinds by it for
	// memory-bound work; it does not feed the cycle-accurate simulation.
	MemAccessCycles float64

	// LocalStoreBytes, when nonzero, overrides the machine-wide
	// cell.Config.LocalStore for cores of this kind, so e.g. a VPU can
	// model a larger scratchpad than the SPEs. Local-store kinds only;
	// zero keeps the machine default.
	LocalStoreBytes uint32

	// DataCacheBytes/CodeCacheBytes, when nonzero, override the
	// runtime's global software data/code cache sizes for cores of this
	// kind (they must still fit the kind's local store together).
	// Local-store kinds only; zero keeps the global configuration.
	DataCacheBytes uint32
	CodeCacheBytes uint32

	// MigrateAffinity scales the predicted cost of running migrated-in
	// work on this kind, as seen by the cross-kind migration cost gate
	// and the drain-time placement estimate. 1.0 (the zero value's
	// meaning) is neutral; values above 1 make the kind a reluctant
	// migration target — its cores must be proportionally more idle
	// before the gate lets arbitrary mid-method work land there (the
	// VPU sets 1.5: cheap FP does not make scalar, branchy work fast).
	// Values below 1 would advertise a kind as a preferred sink.
	MigrateAffinity float64

	// SPMDWidth is the number of data lanes one core of this kind
	// retires per data-parallel kernel iteration step: the effective
	// vector width a fan-out launch may assume when ranking pools.
	// Zero means scalar (width 1). Only the kernel-offload launch
	// planner consults it; the cycle-accurate interpreter charges the
	// kind's ordinary cost table either way, so a wide kind must also
	// price its FP/memory ops accordingly for the width to be honest.
	SPMDWidth uint8
}

// kindSpecs and kindTables are the registry: kindSpecs[k] describes
// kind k, kindTables[k] caches one cost table per kind for the
// capability and score queries (compilers build their own via Costs).
var (
	kindSpecs  []KindSpec
	kindTables []*CostTable
)

// Register adds a core kind to the registry and returns its CoreKind
// value. It panics on a nameless spec, a missing cost-table constructor
// or a duplicate name (names are compared case-insensitively, matching
// ParseCoreKind). Registration normally happens at package init; the
// returned values are dense and ordered by registration.
func Register(s KindSpec) CoreKind {
	if s.Name == "" {
		panic("isa: core kind registered without a name")
	}
	if s.NewCosts == nil {
		panic(fmt.Sprintf("isa: core kind %q registered without a cost table", s.Name))
	}
	for _, e := range kindSpecs {
		if strings.EqualFold(e.Name, s.Name) {
			panic(fmt.Sprintf("isa: core kind %q already registered", s.Name))
		}
	}
	if len(kindSpecs) >= 256 {
		panic("isa: core kind registry full")
	}
	kindSpecs = append(kindSpecs, s)
	kindTables = append(kindTables, s.NewCosts())
	return CoreKind(len(kindSpecs) - 1)
}

// The Cell's two kinds. Registration order fixes the numeric values
// (PPE=0, SPE=1), which topology order, scheduling tie-breaks and the
// experiment tables all rely on; the VPU (vpu.go) registers third.
var (
	// PPE is the PowerPC Processing Element: the single general-purpose
	// core with coherent hardware caches and OS support.
	PPE = Register(KindSpec{
		Name:            "PPE",
		NewCosts:        PPECosts,
		HostsServices:   true,
		BranchPredictor: true,
		MemAccessCycles: 6, // mostly L1 hits at 4 cycles, occasional L2/main
	})
	// SPE is a Synergistic Processing Element: a floating-point-oriented
	// core with a 256 KB local store and no direct main-memory access.
	SPE = Register(KindSpec{
		Name:            "SPE",
		NewCosts:        SPECosts,
		LocalStore:      true,
		MemAccessCycles: 30, // probe + access + amortised DMA misses
	})
)

// Spec returns the registered descriptor for a kind. It panics for an
// unregistered kind; use Known to probe.
func Spec(k CoreKind) KindSpec {
	if !k.Known() {
		panic(fmt.Sprintf("isa: unregistered core kind %d", k))
	}
	return kindSpecs[k]
}

// Known reports whether k is a registered kind.
func (k CoreKind) Known() bool { return int(k) < len(kindSpecs) }

// NumKinds returns how many kinds are registered.
func NumKinds() int { return len(kindSpecs) }

// CoreKinds lists every registered core kind in registration order (the
// order machine topologies, memory layouts and reports enumerate kinds).
func CoreKinds() []CoreKind {
	out := make([]CoreKind, len(kindSpecs))
	for i := range out {
		out[i] = CoreKind(i)
	}
	return out
}

// String returns the registered kind name, or "kind(N)" for a value no
// registered kind owns.
func (k CoreKind) String() string {
	if !k.Known() {
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
	return kindSpecs[k].Name
}

// ParseCoreKind parses a registered kind name ("ppe", "spe", "vpu",
// any case).
func ParseCoreKind(s string) (CoreKind, error) {
	for i, e := range kindSpecs {
		if strings.EqualFold(e.Name, s) {
			return CoreKind(i), nil
		}
	}
	names := make([]string, len(kindSpecs))
	for i, e := range kindSpecs {
		names[i] = strings.ToLower(e.Name)
	}
	return 0, fmt.Errorf("isa: unknown core kind %q (want %s)", s, strings.Join(names, ", "))
}

// Costs returns a fresh default cost table for the given kind. Each
// compiler owns its table; mutating the result never affects the
// registry's cached copy used by the score queries.
func Costs(k CoreKind) *CostTable {
	return Spec(k).NewCosts()
}

// UsesLocalStore reports whether the kind reaches memory through an
// SPE-style local store with software caches and DMA (true), or through
// hardware-coherent caches (false).
func (k CoreKind) UsesLocalStore() bool { return k.Known() && kindSpecs[k].LocalStore }

// HostsServices reports whether the kind can host the runtime services
// (GC, the syscall mailbox service thread, OS support).
func (k CoreKind) HostsServices() bool { return k.Known() && kindSpecs[k].HostsServices }

// PredictsBranches reports whether cores of the kind carry a hardware
// branch predictor (false means static hints with a fixed taken-branch
// penalty).
func (k CoreKind) PredictsBranches() bool { return k.Known() && kindSpecs[k].BranchPredictor }

// FPScore is the kind's predicted per-operation floating-point cost,
// averaged over the common FP arithmetic opcodes. Placement policies
// send FP-dominated work to the registered kind that minimises it.
func (k CoreKind) FPScore() float64 {
	Spec(k) // descriptive panic for unregistered kinds
	t := kindTables[k]
	return float64(uint64(t.OpCost[OpAddF])+uint64(t.OpCost[OpMulF])+
		uint64(t.OpCost[OpAddD])+uint64(t.OpCost[OpMulD])) / 4
}

// MemScore is the kind's predicted cost of one heap access: the static
// address-generation cost plus the spec's dynamic estimate. Placement
// policies send memory-dominated work to the kind that minimises it.
func (k CoreKind) MemScore() float64 {
	s := Spec(k)
	return float64(kindTables[k].OpCost[OpGetField]) + s.MemAccessCycles
}

// MigrateAffinity is the kind's migration-cost multiplier: the factor
// the cross-kind migration gate and the drain-time placement estimate
// apply to predicted per-task service cost on this kind. An unset spec
// (zero) normalizes to the neutral 1.0.
func (k CoreKind) MigrateAffinity() float64 {
	s := Spec(k)
	if s.MigrateAffinity == 0 {
		return 1
	}
	return s.MigrateAffinity
}

// SPMDWidth is the number of data-parallel lanes one core of this kind
// advances per kernel iteration step, as advertised to the kernel
// launch planner. An unset spec (zero) normalizes to scalar width 1.
func (k CoreKind) SPMDWidth() int {
	s := Spec(k)
	if s.SPMDWidth == 0 {
		return 1
	}
	return int(s.SPMDWidth)
}

// CodePressure is the kind's mean encoded instruction size in bytes —
// how hard its compiled code presses on a code cache of a given size
// (the SPE's inline cache probes and hint slots make it larger than the
// PPE's; a wide vector ISA larger still).
func (k CoreKind) CodePressure() float64 {
	Spec(k) // descriptive panic for unregistered kinds
	t := kindTables[k]
	var total uint64
	for o := Op(0); int(o) < NumOps; o++ {
		total += uint64(t.OpSize[o])
	}
	return float64(total) / float64(NumOps)
}
