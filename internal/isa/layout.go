package isa

// Object layout constants shared by the JIT (field-offset resolution),
// the VM (allocation, GC) and the SPE software cache (whole-object
// transfer sizing).
//
// Every object starts with a four-word header; instance fields follow as
// 8-byte slots; array element data follows the header packed at the
// element kind's width.
const (
	// HeaderBytes is the object header size: class ID (4), flags (4),
	// lock word (4), array length (4).
	HeaderBytes = 16
	// SlotBytes is the size of one instance/static field slot.
	SlotBytes = 8

	// Header field byte offsets.
	HeaderClassOff  = 0
	HeaderFlagsOff  = 4
	HeaderLockOff   = 8
	HeaderLengthOff = 12
)

// FieldOffset returns the byte offset of an instance field slot.
func FieldOffset(slot int) uint32 {
	return HeaderBytes + uint32(slot)*SlotBytes
}

// ObjectBytes returns the allocation size of a plain object with the
// given number of instance slots.
func ObjectBytes(slots int) uint32 {
	return HeaderBytes + uint32(slots)*SlotBytes
}

// ArrayBytes returns the allocation size of an array of n elements of
// kind k, rounded to 8 bytes.
func ArrayBytes(k ElemKind, n uint32) uint32 {
	return (HeaderBytes + n*k.Size() + 7) &^ 7
}
