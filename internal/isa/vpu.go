package isa

// VPU is a GPU-like wide Vector Processing Unit: the registry's proof
// that a third core kind drops in as data alone. Nothing outside this
// file names it — the machine model reads its capabilities (SPE-style
// local store, no runtime services, no branch predictor) and the
// placement policies read its cost table (very cheap floating point,
// brutal branch and call costs), and everything else follows.
//
// vpu.go sorts after kinds.go, so the VPU registers third: PPE=0,
// SPE=1, VPU=2. TestKindValuesStable locks the order down.
var VPU = Register(KindSpec{
	Name:            "VPU",
	NewCosts:        VPUCosts,
	LocalStore:      true,
	MemAccessCycles: 36, // wider fills than the SPE: probe + larger DMA amortisation
	// Reluctant migration target: arbitrary mid-method work migrated in
	// by the scheduler is scalar and branchy, the shape this core
	// punishes, so the cross-kind cost gate prices a VPU service
	// quantum half again over its clock-time cost.
	MigrateAffinity: 1.5,
	// Eight data lanes per kernel iteration step: the SPMD fan-out
	// planner weighs one VPU core as eight scalar lanes when ranking
	// pools for a data-parallel launch.
	SPMDWidth: 8,
})

// VPUCosts returns the cost table for the Vector Processing Unit.
//
// Calibration rationale: the VPU models a GPU-style SIMT/wide-vector
// core. Its FP pipelines are the cheapest of the three kinds (the whole
// point of sending FP threads there), simple stack traffic stays in the
// wide register file, but anything control-flow-shaped is punished:
// taken branches flush deep wide pipelines with no predictor or
// hinting, calls serialise the machine, and integer division is a long
// software sequence. Memory follows the SPE's local-store model —
// software data/code caches over a scratchpad, DMA to main memory — so
// the VPU exercises exactly the same runtime machinery as the SPE with
// nothing but different numbers.
func VPUCosts() *CostTable {
	t := &CostTable{
		BranchTakenExtra:    40, // divergence: taken branch drains the wide pipe
		MethodPrologueBytes: 64,
		MethodPrologueCost:  12,
	}
	fill16(&t.OpCost, 1, stackOps...) // wide register file, no stall
	fill16(&t.OpCost, 2, intALU...)
	t.OpCost[OpMulI] = 8
	t.OpCost[OpDivI] = 80 // software divide, longer than the SPE's
	t.OpCost[OpRemI] = 90
	fill16(&t.OpCost, 6, longALU...) // 64-bit ops split across lanes
	t.OpCost[OpMulL] = 24
	t.OpCost[OpDivL] = 160
	t.OpCost[OpRemL] = 180
	fill16(&t.OpCost, 1, fpALU...) // the VPU's reason to exist
	t.OpCost[OpMulF] = 1
	t.OpCost[OpMulD] = 2
	t.OpCost[OpDivF] = 8
	t.OpCost[OpDivD] = 10
	t.OpCost[OpRemF] = 24
	t.OpCost[OpRemD] = 28
	fill16(&t.OpCost, 2, fpConv...)
	t.OpCost[OpGoto] = 6 // even unconditional jumps restart the fetch window
	fill16(&t.OpCost, 8, condBranches...)
	t.OpCost[OpTableSwitch] = 40 // indirect branch: full divergence
	t.OpCost[OpLookupSwitch] = 48
	fill16(&t.OpCost, 24, callOps...) // calls serialise the wide machine
	t.OpCost[OpCallVirtual] = 30
	t.OpCost[OpCallInterface] = 44
	t.OpCost[OpReturn] = 18
	fill16(&t.OpCost, 2, memOps...)
	fill16(&t.OpCost, 30, allocOps...) // allocation is a runtime call, dearer than SPE
	t.OpCost[OpInstanceOf] = 14
	t.OpCost[OpCheckCast] = 14
	t.OpCost[OpMonitorEnter] = 60 // atomic DMA against a contended line
	t.OpCost[OpMonitorExit] = 45
	t.OpCost[OpThrow] = 80

	// Wide instruction words: 8-byte base encoding, with the same
	// inline-software-cache and call-sequence expansions as the SPE,
	// scaled up. This is what makes the VPU the heaviest code-cache
	// client of the three kinds (CodePressure orders PPE < SPE < VPU).
	for o := Op(0); int(o) < NumOps; o++ {
		t.OpSize[o] = 8
	}
	t.OpSize[OpPushConst] = 16 // constant formation across lanes
	fill8(&t.OpSize, 12, OpGoto)
	fill8(&t.OpSize, 12, condBranches...)
	fill8(&t.OpSize, 32, OpGetField, OpPutField, OpALoad, OpAStore)
	fill8(&t.OpSize, 24, OpGetStatic, OpPutStatic)
	t.OpSize[OpArrayLen] = 16
	t.OpSize[OpDivI] = 32
	t.OpSize[OpRemI] = 32
	t.OpSize[OpDivL] = 40
	t.OpSize[OpRemL] = 40
	fill8(&t.OpSize, 32, callOps...)
	fill8(&t.OpSize, 24, allocOps...)
	t.OpSize[OpMonitorEnter] = 40
	t.OpSize[OpMonitorExit] = 32
	t.OpSize[OpReturn] = 16
	return t
}
