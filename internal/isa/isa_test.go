package isa

import (
	"testing"
	"testing/quick"
)

func TestOpNamesComplete(t *testing.T) {
	for o := Op(0); int(o) < NumOps; o++ {
		if opNames[o] == "" {
			t.Errorf("opcode %d has no mnemonic", o)
		}
	}
}

func TestOpClassInRange(t *testing.T) {
	for o := Op(0); int(o) < NumOps; o++ {
		if int(o.Class()) >= NumClasses {
			t.Errorf("opcode %v has out-of-range class %d", o, o.Class())
		}
	}
}

func TestClassNames(t *testing.T) {
	want := map[OpClass]string{
		ClassInt:      "Integer",
		ClassFloat:    "Floating Point",
		ClassBranch:   "Branch",
		ClassStack:    "Stack",
		ClassLocalMem: "Local Memory",
		ClassMainMem:  "Main Memory",
	}
	for c, name := range want {
		if c.String() != name {
			t.Errorf("class %d: got %q want %q", c, c.String(), name)
		}
	}
	if OpClass(200).String() != "Unknown" {
		t.Errorf("out-of-range class should stringify as Unknown")
	}
}

func TestElemKindSizes(t *testing.T) {
	want := map[ElemKind]uint32{
		ElemBool: 1, ElemByte: 1, ElemChar: 2, ElemShort: 2,
		ElemInt: 4, ElemFloat: 4, ElemLong: 8, ElemDouble: 8, ElemRef: 4,
	}
	for k, sz := range want {
		if k.Size() != sz {
			t.Errorf("%v size: got %d want %d", k, k.Size(), sz)
		}
	}
}

func TestCostTablesPopulated(t *testing.T) {
	for _, kind := range CoreKinds() {
		tab := Costs(kind)
		for o := Op(0); int(o) < NumOps; o++ {
			if o == OpNop {
				continue
			}
			if tab.OpCost[o] == 0 {
				t.Errorf("%v: opcode %v has zero cost", kind, o)
			}
			if tab.OpSize[o] == 0 {
				t.Errorf("%v: opcode %v has zero size", kind, o)
			}
		}
	}
}

// The SPE must model faster floating point and slower integer division
// than the PPE, and larger memory-access code; these relationships are
// what the paper's Figure 4(a) and Figure 7 depend on. Lock the
// relationships down so recalibration cannot silently invert them.
func TestCostRelationships(t *testing.T) {
	ppe, spe := PPECosts(), SPECosts()
	if spe.OpCost[OpMulD] >= ppe.OpCost[OpMulD] {
		t.Errorf("SPE double multiply (%d) must be cheaper than PPE (%d)",
			spe.OpCost[OpMulD], ppe.OpCost[OpMulD])
	}
	if spe.OpCost[OpAddD] >= ppe.OpCost[OpAddD] {
		t.Errorf("SPE double add (%d) must be cheaper than PPE (%d)",
			spe.OpCost[OpAddD], ppe.OpCost[OpAddD])
	}
	if spe.OpCost[OpDivI] <= ppe.OpCost[OpDivI] {
		t.Errorf("SPE integer divide (%d) must be dearer than PPE (%d): no hardware divider",
			spe.OpCost[OpDivI], ppe.OpCost[OpDivI])
	}
	if spe.BranchTakenExtra <= ppe.BranchTakenExtra {
		t.Errorf("SPE taken-branch penalty (%d) must exceed PPE (%d): no predictor",
			spe.BranchTakenExtra, ppe.BranchTakenExtra)
	}
	for _, o := range []Op{OpGetField, OpPutField, OpALoad, OpAStore} {
		if spe.OpSize[o] <= ppe.OpSize[o] {
			t.Errorf("SPE %v encoded size (%d) must exceed PPE (%d): inline cache probe",
				o, spe.OpSize[o], ppe.OpSize[o])
		}
	}
}

func TestInstrString(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: OpAddI}, "addi"},
		{Instr{Op: OpLoadLocal, A: 3}, "loadlocal    l3"},
		{Instr{Op: OpGoto, A: 17}, "goto         @17"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String(%v): got %q want %q", c.in.Op, got, c.want)
		}
	}
}

func TestPushConstRoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		in := Instr{Op: OpPushConst, A: int32(uint32(v)), B: int32(uint32(v >> 32))}
		out := uint64(uint32(in.A)) | uint64(uint32(in.B))<<32
		return out == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
