package isa

// CostTable assigns each machine opcode a static cycle cost and an
// encoded size in bytes for one core type. Costs are calibration values,
// not silicon measurements: they are chosen so that the relative
// behaviour the paper reports (Figures 4-7) emerges from the simulation.
// The rationale for each group is documented on the constructors below.
//
// Memory opcodes (OpGetField etc.) carry only their address-generation
// cost here; the dynamic portion (software-cache probe and DMA on the
// SPE, hardware-cache hit/miss on the PPE) is charged by the machine
// model at execution time.
type CostTable struct {
	// OpCost is the static cycle cost per opcode.
	OpCost [NumOps]uint16
	// OpSize is the encoded size in bytes per opcode. The SPE's sequences
	// are larger (inline software-cache probes, branch hints, constant
	// formation), which is what gives the code cache its pressure.
	OpSize [NumOps]uint8
	// BranchTakenExtra is added when a conditional branch is taken.
	// On the SPE this models the ~18-cycle penalty of a branch without a
	// correct hint (the baseline compiler hints fall-through); on the PPE
	// it models a mispredict charged probabilistically by the predictor.
	BranchTakenExtra uint16
	// MethodPrologueBytes/MethodPrologueCost model per-method entry
	// (frame build) code.
	MethodPrologueBytes uint16
	MethodPrologueCost  uint16
}

func fill16(dst *[NumOps]uint16, v uint16, ops ...Op) {
	for _, o := range ops {
		dst[o] = v
	}
}

func fill8(dst *[NumOps]uint8, v uint8, ops ...Op) {
	for _, o := range ops {
		dst[o] = v
	}
}

var stackOps = []Op{
	OpNop, OpPushConst, OpLoadLocal, OpStoreLocal, OpPop, OpPop2, OpDup,
	OpDupX1, OpDupX2, OpDup2, OpSwap, OpIncLocal,
}

var intALU = []Op{
	OpAddI, OpSubI, OpNegI, OpAndI, OpOrI, OpXorI, OpShlI, OpShrI, OpUShrI,
	OpI2B, OpI2C, OpI2S,
}

var longALU = []Op{
	OpAddL, OpSubL, OpNegL, OpAndL, OpOrL, OpXorL, OpShlL, OpShrL, OpUShrL,
	OpCmpL, OpI2L, OpL2I,
}

var fpALU = []Op{
	OpAddF, OpSubF, OpMulF, OpNegF, OpCmpF,
	OpAddD, OpSubD, OpMulD, OpNegD, OpCmpD,
}

var fpConv = []Op{
	OpI2F, OpI2D, OpL2F, OpL2D, OpF2I, OpF2L, OpF2D, OpD2I, OpD2L, OpD2F,
}

var condBranches = []Op{OpIf, OpIfCmpI, OpIfCmpRef, OpIfNull}

var memOps = []Op{
	OpGetField, OpPutField, OpGetStatic, OpPutStatic, OpALoad, OpAStore,
	OpArrayLen,
}

var allocOps = []Op{OpNew, OpNewArray, OpANewArray}

var callOps = []Op{OpCallStatic, OpCallSpecial, OpCallVirtual, OpCallInterface}

// PPECosts returns the cost table for the PowerPC Processing Element.
//
// Calibration rationale: the PPE is a 2-way in-order core running
// baseline-compiled (stack-machine-shaped) code, which suffers pipeline
// and load-hit-store stalls; its hardware caches make memory cheap when
// they hit. Its scalar FPU is modelled slower than the SPE's
// (latency-bound under unscheduled baseline code), which is what lets the
// SPE win on floating-point workloads as in Figure 4(a).
func PPECosts() *CostTable {
	t := &CostTable{
		BranchTakenExtra:    4, // predictor resolves most; amortised penalty
		MethodPrologueBytes: 32,
		MethodPrologueCost:  6,
	}
	fill16(&t.OpCost, 3, stackOps...) // load-hit-store stalls in stack-shaped code
	fill16(&t.OpCost, 1, intALU...)
	t.OpCost[OpMulI] = 6
	t.OpCost[OpDivI] = 24
	t.OpCost[OpRemI] = 28
	fill16(&t.OpCost, 2, longALU...)
	t.OpCost[OpMulL] = 9
	t.OpCost[OpDivL] = 40
	t.OpCost[OpRemL] = 44
	fill16(&t.OpCost, 6, fpALU...)
	t.OpCost[OpMulF] = 6
	t.OpCost[OpMulD] = 6
	t.OpCost[OpDivF] = 28
	t.OpCost[OpDivD] = 33
	t.OpCost[OpRemF] = 40
	t.OpCost[OpRemD] = 45
	fill16(&t.OpCost, 5, fpConv...)
	t.OpCost[OpGoto] = 2
	fill16(&t.OpCost, 3, condBranches...)
	t.OpCost[OpTableSwitch] = 6
	t.OpCost[OpLookupSwitch] = 10
	fill16(&t.OpCost, 12, callOps...)
	t.OpCost[OpCallVirtual] = 14 // extra vtable load
	t.OpCost[OpCallInterface] = 22
	t.OpCost[OpReturn] = 8
	fill16(&t.OpCost, 2, memOps...) // address generation; cache adds the rest
	fill16(&t.OpCost, 20, allocOps...)
	t.OpCost[OpInstanceOf] = 8
	t.OpCost[OpCheckCast] = 8
	t.OpCost[OpMonitorEnter] = 30 // lwarx/stwcx. sequence + sync
	t.OpCost[OpMonitorExit] = 20
	t.OpCost[OpThrow] = 40

	for o := Op(0); int(o) < NumOps; o++ {
		t.OpSize[o] = 4
	}
	fill8(&t.OpSize, 8, OpPushConst, OpGetField, OpPutField, OpGetStatic,
		OpPutStatic, OpALoad, OpAStore)
	fill8(&t.OpSize, 12, callOps...)
	fill8(&t.OpSize, 16, allocOps...)
	t.OpSize[OpMonitorEnter] = 24
	t.OpSize[OpMonitorExit] = 16
	return t
}

// SPECosts returns the cost table for a Synergistic Processing Element.
//
// Calibration rationale: the SPE's even/odd dual-issue pipelines make
// simple ALU and (hinted) straight-line code fast, and its FP pipeline is
// modelled faster than the PPE's (the SPE ISA is "highly tuned for
// floating point", §2). It has no scalar integer divider (software
// sequences), and unhinted taken branches pay a large flush penalty.
// Memory opcodes carry only the address-generation cost; the software
// data cache adds probe cycles on hits and DMA cycles on misses. Encoded
// sizes are larger than the PPE's because memory accesses expand to
// inline cache-probe sequences and branches carry hint slots — this size
// difference is what loads the code cache (Figure 7).
func SPECosts() *CostTable {
	t := &CostTable{
		BranchTakenExtra:    18, // unhinted taken branch flushes the pipe
		MethodPrologueBytes: 48,
		MethodPrologueCost:  8,
	}
	fill16(&t.OpCost, 2, stackOps...)
	fill16(&t.OpCost, 2, intALU...)
	t.OpCost[OpMulI] = 7
	t.OpCost[OpDivI] = 60 // software divide
	t.OpCost[OpRemI] = 70
	fill16(&t.OpCost, 4, longALU...)
	t.OpCost[OpMulL] = 16
	t.OpCost[OpDivL] = 110
	t.OpCost[OpRemL] = 120
	fill16(&t.OpCost, 2, fpALU...)
	t.OpCost[OpMulF] = 2
	t.OpCost[OpMulD] = 3
	t.OpCost[OpDivF] = 12
	t.OpCost[OpDivD] = 14
	t.OpCost[OpRemF] = 30
	t.OpCost[OpRemD] = 36
	fill16(&t.OpCost, 4, fpConv...)
	t.OpCost[OpGoto] = 2 // hinted by the compiler
	fill16(&t.OpCost, 2, condBranches...)
	t.OpCost[OpTableSwitch] = 22 // indirect branch, unhintable
	t.OpCost[OpLookupSwitch] = 26
	fill16(&t.OpCost, 8, callOps...) // plus code-cache lookup, charged dynamically
	t.OpCost[OpCallVirtual] = 10
	t.OpCost[OpCallInterface] = 18
	t.OpCost[OpReturn] = 6
	fill16(&t.OpCost, 2, memOps...)
	fill16(&t.OpCost, 24, allocOps...) // allocation is a runtime call
	t.OpCost[OpInstanceOf] = 10
	t.OpCost[OpCheckCast] = 10
	t.OpCost[OpMonitorEnter] = 40 // atomic DMA (getllar/putllc equivalent)
	t.OpCost[OpMonitorExit] = 30
	t.OpCost[OpThrow] = 50

	for o := Op(0); int(o) < NumOps; o++ {
		t.OpSize[o] = 4
	}
	t.OpSize[OpPushConst] = 12 // constant formation (il/ilhu/iohl)
	fill8(&t.OpSize, 8, OpGoto)
	fill8(&t.OpSize, 8, condBranches...)
	fill8(&t.OpSize, 28, OpGetField, OpPutField, OpALoad, OpAStore)
	fill8(&t.OpSize, 20, OpGetStatic, OpPutStatic)
	t.OpSize[OpArrayLen] = 16
	t.OpSize[OpDivI] = 24
	t.OpSize[OpRemI] = 24
	t.OpSize[OpDivL] = 32
	t.OpSize[OpRemL] = 32
	fill8(&t.OpSize, 24, callOps...) // TOC/TIB/method lookup sequence
	fill8(&t.OpSize, 20, allocOps...)
	t.OpSize[OpMonitorEnter] = 32
	t.OpSize[OpMonitorExit] = 24
	t.OpSize[OpReturn] = 12 // re-lookup of caller on return (§3.2.2)
	return t
}
