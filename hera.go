// Package hera is the public API of the Hera-JVM reproduction: a Java
// virtual machine that hides the heterogeneity of a (simulated) Cell
// processor behind a homogeneous multi-threaded machine, after
// "Hera-JVM: Abstracting Processor Heterogeneity Behind a Virtual
// Machine" (McIlroy & Sventek, HotOS 2009).
//
// A minimal session:
//
//	prog := hera.NewProgram()
//	cls := prog.NewClass("Main", nil)
//	m := cls.NewMethod("main", hera.Static, hera.Int)
//	a := m.Asm()
//	a.ConstI(21)
//	a.ConstI(2)
//	a.MulI()
//	a.Ret()
//	a.MustBuild()
//
//	sys, _ := hera.NewSystem(hera.DefaultConfig(), prog)
//	job, _, _ := sys.Submit(hera.JobRequest{Class: "Main", Method: "main"})
//	res, _ := job.Wait()
//	fmt.Println(int32(res.Value), res.Cycles)
//
// A System is a long-lived session: the VM stays booted, and many jobs
// can be submitted to it asynchronously (in simulated time) and waited
// on individually, each with its own per-job accounting — cycles from
// admission to completion, captured output, and
// migration/steal/compile/GC counters:
//
//	job1, _, _ := sys.Submit(hera.JobRequest{Class: "Main", Method: "main"})
//	job2, _, _ := sys.Submit(hera.JobRequest{Class: "Main", Method: "main", Arrival: 500_000})
//	_ = sys.Drain()
//	res1, _ := job1.Wait()
//	res2, _ := job2.Wait()
//	fmt.Println(res1.Cycles, res2.Cycles, res2.Migrations)
//
// Every submission passes through an admission pipeline and Submit
// returns its verdict — Admitted, Delayed (accepted, but predicted to
// queue) or Shed. A JobRequest may carry a Deadline (cycles, relative
// to admission); with Config.Admission shedding enabled, jobs the
// scheduler's drain estimates predict to miss their deadline are shed
// at admission and never run. Replaying the same submission script
// reproduces the same results byte for byte: admission is ordered by
// (arrival cycle, submission sequence), verdicts included, and the
// machine's stepping is deterministic.
//
// Threads whose methods carry placement annotations (RunOnSPE,
// FloatIntensive, ...) migrate transparently between the PPE and the
// SPEs; unannotated programs run correctly regardless of placement.
// See DESIGN.md for the architecture and EXPERIMENTS.md for the
// reproduction of the paper's figures.
//
// Above the single System sits the cluster layer: BootCluster starts N
// independent shards — each a full System with its own topology,
// scheduler and admission config — and a dispatcher that routes every
// submission to the shard predicting the earliest completion, shedding
// only when no shard can take it. Shards advance concurrently on their
// own goroutines under a conservative epoch barrier, so the simulation
// scales wall-clock with host cores while the merged result stream
// stays byte-identical to serial advancement (see
// docs/ARCHITECTURE.md, "Cluster layer").
package hera

import (
	"herajvm/internal/cell"
	"herajvm/internal/classfile"
	"herajvm/internal/cluster"
	"herajvm/internal/core"
	"herajvm/internal/experiments"
	"herajvm/internal/isa"
	"herajvm/internal/sched"
	"herajvm/internal/vm"
	"herajvm/internal/workloads"
)

// Program building (see internal/classfile for full documentation).
type (
	// Program is a closed world of classes built via the assembler API.
	Program = classfile.Program
	// Class is a declared class or interface.
	Class = classfile.Class
	// Method is a declared method; Method.Asm() assembles its body.
	Method = classfile.Method
	// Field is a declared field.
	Field = classfile.Field
	// Asm is the bytecode assembler.
	Asm = classfile.Asm
	// TypeKind is a verification-level value type.
	TypeKind = classfile.TypeKind
	// MethodFlags modify method declarations.
	MethodFlags = classfile.MethodFlags
)

// Type kinds.
const (
	// Void marks a method with no return value.
	Void = classfile.Void
	// Int is the 32-bit integer value type.
	Int = classfile.Int
	// Long is the 64-bit integer value type.
	Long = classfile.Long
	// Float is the 32-bit floating-point value type.
	Float = classfile.Float
	// Double is the 64-bit floating-point value type.
	Double = classfile.Double
	// Ref is the object-reference value type.
	Ref = classfile.Ref
)

// Method flags.
const (
	// Static declares a method with no receiver.
	Static = classfile.FlagStatic
	// Native declares a method implemented by the runtime, not bytecode.
	Native = classfile.FlagNative
	// Synchronized wraps the method body in its receiver's (or class's)
	// monitor.
	Synchronized = classfile.FlagSynchronized
	// Abstract declares a method without a body, to be overridden.
	Abstract = classfile.FlagAbstract
)

// Placement annotations (the paper's behaviour hints, §3).
const (
	// FloatIntensive sends the thread to the registered kind with the
	// cheapest predicted floating point.
	FloatIntensive = classfile.AnnFloatIntensive
	// MemoryIntensive sends the thread to the registered kind with the
	// cheapest predicted memory access.
	MemoryIntensive = classfile.AnnMemoryIntensive
	// RunOnSPE pins the annotated method's thread to the SPE pool.
	RunOnSPE = classfile.AnnRunOnSPE
	// RunOnPPE pins the annotated method's thread to the PPE pool.
	RunOnPPE = classfile.AnnRunOnPPE
)

// Array element kinds for NewArray/ALoad/AStore.
const (
	// ElemBool is a boolean array element.
	ElemBool = classfile.ElemBool
	// ElemByte is a byte array element.
	ElemByte = classfile.ElemByte
	// ElemChar is a 16-bit char array element.
	ElemChar = classfile.ElemChar
	// ElemShort is a 16-bit short array element.
	ElemShort = classfile.ElemShort
	// ElemInt is a 32-bit int array element.
	ElemInt = classfile.ElemInt
	// ElemFloat is a 32-bit float array element.
	ElemFloat = classfile.ElemFloat
	// ElemLong is a 64-bit long array element.
	ElemLong = classfile.ElemLong
	// ElemDouble is a 64-bit double array element.
	ElemDouble = classfile.ElemDouble
	// ElemRef is an object-reference array element.
	ElemRef = classfile.ElemRef
)

// NewProgram creates a program with the built-in Java library subset
// (Object, String, Runnable, Thread, System, Math) installed.
func NewProgram() *Program {
	p := classfile.NewProgram()
	vm.Stdlib(p)
	return p
}

// Runtime configuration and the system itself.
type (
	// Config tunes the machine and runtime; see vm.Config.
	Config = vm.Config
	// MachineConfig tunes the simulated Cell processor.
	MachineConfig = cell.Config
	// System is a booted Hera-JVM instance — a long-lived session that
	// accepts job submissions (Submit/Drain) beside the one-shot Run.
	System = core.System
	// JobRequest describes one submission to a booted System: an entry
	// method, optional int args, an arrival cycle, an optional
	// completion deadline and an optional placement-policy override.
	JobRequest = core.JobRequest
	// Job is one submitted job; Job.Wait drives the machine until it
	// completes and returns its per-job Result, and Job.Err reports its
	// first thread trap without driving anything.
	Job = core.Job
	// Result summarises one completed job: admission-to-completion
	// cycles, the entry method's return value, the job's own captured
	// output, its admission verdict and deadline fate, and its
	// migration/steal/compile/GC counters.
	Result = core.Result
	// Verdict is the admission pipeline's decision for one submission
	// (Admitted, Delayed or Shed).
	Verdict = core.Verdict
	// AdmissionConfig bounds the admission pipeline (Config.Admission):
	// a pending-job backstop plus deadline-predictive shedding. The
	// zero value admits everything.
	AdmissionConfig = vm.AdmissionConfig
	// Policy decides thread placement.
	Policy = vm.Policy
	// AnnotationPolicy places threads by code annotations (the default).
	AnnotationPolicy = vm.AnnotationPolicy
	// FixedPolicy pins all threads to one core kind.
	FixedPolicy = vm.FixedPolicy
	// MonitoringPolicy places threads by observed cycle composition
	// (the paper's proposed runtime monitoring, §6).
	MonitoringPolicy = vm.MonitoringPolicy
	// CoreKind identifies one registered core kind (PPE, SPE, VPU, or
	// any kind added via RegisterCoreKind).
	CoreKind = isa.CoreKind
	// KindSpec describes a core kind for RegisterCoreKind: name, cost
	// table, memory model, branch model and service capability.
	KindSpec = isa.KindSpec
	// CostTable is a kind's static per-opcode cost/size calibration.
	CostTable = isa.CostTable
	// Topology declares a machine's core mix as ordered groups.
	Topology = cell.Topology
	// CoreGroup is one run of identical cores in a Topology.
	CoreGroup = cell.CoreGroup
)

// Admission verdicts.
const (
	// Admitted means the job is predicted to start promptly.
	Admitted = core.Admitted
	// Delayed means the job was accepted but will queue first.
	Delayed = core.Delayed
	// Shed means the job was refused at admission and never runs.
	Shed = core.Shed
)

// ErrDeadlock is the machine-level failure Job.Wait and System.Drain
// wrap when live threads remain but none is runnable; match it with
// errors.Is to distinguish a dead machine from a per-job trap (which
// Wait returns alongside a valid Result).
var ErrDeadlock = core.ErrDeadlock

// Core kinds. PPE and SPE are the Cell's pair; VPU is the registered
// GPU-like wide vector core (cheap FP, brutal branches, SPE-style
// local store).
var (
	// PPE is the general-purpose, service-hosting PowerPC element.
	PPE = isa.PPE
	// SPE is the local-store accelerator element.
	SPE = isa.SPE
	// VPU is the GPU-like wide vector core.
	VPU = isa.VPU
)

// RegisterCoreKind adds a new core kind from a KindSpec — cost table,
// capability flags and all — and returns its CoreKind value. Once
// registered, the kind can appear in topologies ("ppe:1,mykind:4"), is
// scheduled, JIT-compiled and placed like any built-in kind, and the
// placement policies weigh it by its cost table. See the README's
// "Adding a new core kind" walkthrough.
func RegisterCoreKind(s KindSpec) CoreKind { return isa.Register(s) }

// ParseCoreKind parses a registered kind name ("ppe", "spe", "vpu",
// any case).
func ParseCoreKind(s string) (CoreKind, error) { return isa.ParseCoreKind(s) }

// DefaultConfig returns a PS3-like machine: one PPE, six SPEs, 256 KB
// local stores with a 104 KB data cache and 88 KB code cache per SPE.
func DefaultConfig() Config { return vm.DefaultConfig() }

// PS3Topology returns the classic Cell shape: one PPE + numSPEs SPEs.
func PS3Topology(numSPEs int) Topology { return cell.PS3Topology(numSPEs) }

// ParseTopology parses a topology spec such as "ppe:1,spe:6" or
// "ppe:2,spe:2" — any mix with at least one PPE is a valid machine.
func ParseTopology(s string) (Topology, error) { return cell.ParseTopology(s) }

// ParseTopologyList parses a semicolon-separated list of topology
// specs, e.g. "ppe:1,spe:6;ppe:1,spe:4,vpu:2" (the herabench -topology
// flag syntax).
func ParseTopologyList(s string) ([]Topology, error) { return cell.ParseTopologyList(s) }

// Schedulers lists the registered scheduler names Config.Scheduler
// accepts: "calendar" (the default per-core event-calendar scheduler),
// "steal" (the calendar plus same-kind work stealing) and "migrate"
// (stealing plus cost-gated cross-kind migration). The scheduling
// subsystem lives in internal/sched behind a small interface; new
// algorithms register there like core kinds do in the kind registry —
// see docs/ARCHITECTURE.md for the interface contract.
func Schedulers() []string { return sched.Names() }

// Traces lists the registered arrival-trace names the open-loop serve
// driver accepts (the -trace flag of herabench and herajvm): "uniform",
// "poisson", "bursty" and "diurnal". Like Schedulers, it is the
// discovery surface — CLIs build their help text from it.
func Traces() []string { return experiments.Traces() }

// DefaultMonitoringPolicy returns the runtime-monitoring placement
// policy with calibrated thresholds.
func DefaultMonitoringPolicy() *MonitoringPolicy { return vm.DefaultMonitoringPolicy() }

// NewSystem boots a Hera-JVM for the program.
func NewSystem(cfg Config, prog *Program) (*System, error) {
	return core.NewSystem(cfg, prog)
}

// The cluster layer: N shards behind a drain-routed dispatcher.
type (
	// Cluster is a booted shard fleet; Submit routes jobs, Drain runs
	// every shard to completion, Results returns the merged stream.
	Cluster = cluster.Cluster
	// ClusterConfig tunes the fleet: epoch stride, serial vs parallel
	// shard advancement, dispatcher-level deadline shedding, and an
	// optional context that aborts wedged epochs.
	ClusterConfig = cluster.Config
	// ShardConfig describes one shard: its VM config plus a builder
	// for its own program instance (shards share no mutable state, so
	// each must build its own copy).
	ShardConfig = cluster.ShardConfig
	// Shard is one booted member of a Cluster.
	Shard = cluster.Shard
	// ClusterJob is one dispatched (or dispatcher-shed) submission.
	ClusterJob = cluster.Job
	// ClusterResult is one entry of the merged result stream.
	ClusterResult = cluster.Result
)

// BootCluster boots a shard fleet: each ShardConfig's Build constructs
// that shard's program and its VM boots with the shard's own config —
// topologies, schedulers and admission settings may differ per shard.
func BootCluster(cfg ClusterConfig, shards []ShardConfig) (*Cluster, error) {
	return cluster.Boot(cfg, shards)
}

// Benchmarks and experiments.
type (
	// Workload is one of the paper's three benchmarks.
	Workload = workloads.Spec
	// KernelWorkload is a data-parallel showcase workload with a
	// hera/Parallel.forRange entry class and a scalar twin running the
	// identical body sequentially (matmul, nbody, kmeans).
	KernelWorkload = workloads.KernelSpec
	// ExperimentOptions sizes experiment runs.
	ExperimentOptions = experiments.Options
)

// Workloads returns the paper's three benchmarks (compress, mpegaudio,
// mandelbrot).
func Workloads() []Workload { return workloads.All() }

// WorkloadByName finds one benchmark by name. Kernel workload names
// resolve to their forRange variant, so serve traces and job mixes can
// interleave data-parallel launches with the paper workloads.
func WorkloadByName(name string) (Workload, error) { return workloads.ByName(name) }

// KernelWorkloads returns the data-parallel kernel workloads.
func KernelWorkloads() []KernelWorkload { return workloads.Kernels() }

// KernelWorkloadByName finds one kernel workload by name.
func KernelWorkloadByName(name string) (KernelWorkload, error) {
	return workloads.KernelByName(name)
}

// QuickExperiments returns reduced-size experiment options;
// FullExperiments the paper-shaped defaults.
func QuickExperiments() ExperimentOptions { return experiments.Quick() }

// FullExperiments returns the default experiment options.
func FullExperiments() ExperimentOptions { return experiments.Full() }
