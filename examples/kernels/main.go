// Kernel offload: the data-parallel subsystem end to end. The matmul
// workload ships two entry points over one shared body class — a
// scalar twin that runs the whole iteration space sequentially, and a
// kernel twin whose main calls hera/Parallel.forRange(0, n, body). The
// launch picks the machine's cheapest SPMD pool (the VPUs here, SPEs
// on a plain PS3), fans one pinned worker out per core, stages each
// worker's tiles into its scratchpad over double-buffered DMA, and
// joins at a barrier. The demo runs both twins on both machine shapes
// and prints the speedups; every run must produce the same checksum.
//
//	go run ./examples/kernels
package main

import (
	"fmt"
	"log"

	hera "herajvm"
)

func run(k hera.KernelWorkload, kernel bool, topo hera.Topology) (*hera.Result, int32) {
	prog, err := k.Build(2) // 32x32 matrices
	if err != nil {
		log.Fatal(err)
	}
	cfg := hera.DefaultConfig()
	cfg.Machine.Topology = topo
	sys, err := hera.NewSystem(cfg, prog)
	if err != nil {
		log.Fatal(err)
	}
	entry := k.ScalarClass
	if kernel {
		entry = k.KernelClass
	}
	job, _, err := sys.Submit(hera.JobRequest{Class: entry, Method: "main"})
	if err != nil {
		log.Fatal(err)
	}
	res, err := job.Wait()
	if err != nil {
		log.Fatal(err)
	}
	return res, int32(uint32(res.Value))
}

func main() {
	k, err := hera.KernelWorkloadByName("matmul")
	if err != nil {
		log.Fatal(err)
	}
	want := k.Reference(2)
	for _, shape := range []string{"ppe:1,spe:6", "ppe:1,spe:4,vpu:2"} {
		topo, err := hera.ParseTopology(shape)
		if err != nil {
			log.Fatal(err)
		}
		scalar, ssum := run(k, false, topo)
		kernel, ksum := run(k, true, topo)
		if ssum != want || ksum != want {
			log.Fatalf("%s: checksums %d/%d, want %d", shape, ssum, ksum, want)
		}
		fmt.Printf("%-18s scalar %9d cycles | forRange %9d cycles  %.2fx  (%d workers, %d B staged)\n",
			shape, scalar.Cycles, kernel.Cycles,
			float64(scalar.Cycles)/float64(kernel.Cycles),
			kernel.KernelWorkers, kernel.KernelDMABytes)
	}
	fmt.Println("\nsame body, same checksum: the launch changes where and how fast, never what.")
}
