// VPU: a third core kind added by data alone. The VPU is a GPU-like
// wide vector core registered in the kind registry with nothing but a
// cost table (very cheap floating point, brutal branch and call costs)
// and capability flags (SPE-style local store, no runtime services).
// No scheduler, policy, cache or JIT code names it — yet the same
// unmodified floating-point program below migrates to VPU cores when
// the topology declares them, because the adaptive monitoring policy
// sends FP-dominated methods to the registered kind with the cheapest
// predicted floating point: the SPE on a classic PS3, the VPU when one
// is present.
//
//	go run ./examples/vpu
package main

import (
	"fmt"
	"log"

	hera "herajvm"
)

// buildProgram creates Main.main calling an unannotated polynomial
// kernel repeatedly; only runtime monitoring can discover that it is
// FP-bound and move it.
func buildProgram() *hera.Program {
	prog := hera.NewProgram()
	cls := prog.NewClass("Main", nil)

	horner := cls.NewMethod("horner", hera.Static, hera.Double, hera.Double)
	{
		a := horner.Asm()
		// Evaluate a fixed degree-3000 polynomial at x by Horner's rule.
		// locals: 0=x 1=acc 2=i
		loop, done := a.NewLabel(), a.NewLabel()
		a.ConstD(1.0)
		a.StoreD(1)
		a.ConstI(0)
		a.StoreI(2)
		a.Bind(loop)
		a.LoadI(2)
		a.ConstI(3000)
		a.IfICmpGE(done)
		a.LoadD(1)
		a.LoadD(0)
		a.MulD()
		a.ConstD(0.5)
		a.AddD()
		a.StoreD(1)
		a.Inc(2, 1)
		a.Goto(loop)
		a.Bind(done)
		a.LoadD(1)
		a.Ret()
		a.MustBuild()
	}

	m := cls.NewMethod("main", hera.Static, hera.Int)
	a := m.Asm()
	loop, done := a.NewLabel(), a.NewLabel()
	a.ConstD(0)
	a.StoreD(0)
	a.ConstI(0)
	a.StoreI(2)
	a.Bind(loop)
	a.LoadI(2)
	a.ConstI(40)
	a.IfICmpGE(done)
	a.LoadD(0)
	a.ConstD(0.999)
	a.InvokeStatic(horner)
	a.AddD()
	a.StoreD(0)
	a.Inc(2, 1)
	a.Goto(loop)
	a.Bind(done)
	a.LoadD(0)
	a.D2I()
	a.Ret()
	a.MustBuild()
	return prog
}

func run(topology string) {
	topo, err := hera.ParseTopology(topology)
	if err != nil {
		log.Fatal(err)
	}
	cfg := hera.DefaultConfig()
	cfg.Machine.Topology = topo
	cfg.Policy = hera.DefaultMonitoringPolicy()
	sys, err := hera.NewSystem(cfg, buildProgram())
	if err != nil {
		log.Fatal(err)
	}
	job, _, err := sys.Submit(hera.JobRequest{Class: "Main", Method: "main"})
	if err != nil {
		log.Fatal(err)
	}
	res, err := job.Wait()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-20s result=%d cycles=%-10d", topology, int32(uint32(res.Value)), res.Cycles)
	for _, kind := range []hera.CoreKind{hera.PPE, hera.SPE, hera.VPU} {
		var instrs, in uint64
		for _, c := range sys.VM.Machine.CoresOf(kind) {
			instrs += c.Stats.Instrs
			in += c.Stats.MigrationsIn
		}
		fmt.Printf(" %s instrs=%-8d mig-in=%-3d", kind, instrs, in)
	}
	fmt.Println()
}

func main() {
	fmt.Println("one unannotated FP program; the monitoring policy picks the cheapest-FP kind the machine has:")
	run("ppe:1")             // homogeneous: nowhere better to go
	run("ppe:1,spe:6")       // classic PS3: FP work migrates to the SPEs
	run("ppe:1,spe:4,vpu:2") // three kinds: the VPU wins the FP work
}
