// Jobserver: boot one VM and submit several jobs to it as a session —
// the same entry method run as independent jobs arriving over
// simulated time, each with its own per-job cycles, output and
// scheduling counters. Each job carries a completion deadline, and the
// last submission carries one so tight the admission pipeline sheds it
// on the spot — its Wait returns immediately with Result.Shed set.
//
//	go run ./examples/jobserver
package main

import (
	"fmt"
	"log"

	hera "herajvm"
)

func main() {
	prog := hera.NewProgram()
	system := prog.Lookup("java/lang/System")

	// class Work { @RunOnSPE static int crunch(int n) { ...spin...; return n*n } }
	cls := prog.NewClass("Work", nil)
	crunch := cls.NewMethod("crunch", hera.Static, hera.Int, hera.Int).
		Annotate(hera.RunOnSPE)
	{
		a := crunch.Asm()
		// for (i = 0; i < 200000; i++) {}  then return n*n
		loop, done := a.NewLabel(), a.NewLabel()
		a.ConstI(0)
		a.StoreI(1)
		a.Bind(loop)
		a.LoadI(1)
		a.ConstI(200_000)
		a.IfICmpGE(done)
		a.Inc(1, 1)
		a.Goto(loop)
		a.Bind(done)
		a.LoadI(0)
		a.LoadI(0)
		a.MulI()
		a.Ret()
		a.MustBuild()
	}
	m := cls.NewMethod("main", hera.Static, hera.Int, hera.Int)
	a := m.Asm()
	a.Str("job running")
	a.InvokeStatic(system.MethodByName("println"))
	a.LoadI(0)
	a.InvokeStatic(crunch)
	a.Ret()
	a.MustBuild()

	cfg := hera.DefaultConfig()
	// Deadline shedding on: submissions predicted (from the scheduler's
	// drain estimates) to miss their deadline are refused at admission.
	cfg.Admission = hera.AdmissionConfig{Shed: true}
	sys, err := hera.NewSystem(cfg, prog)
	if err != nil {
		log.Fatal(err)
	}

	// Four submissions, arriving 100k cycles apart, sharing the booted
	// machine. Nothing executes until the machine is driven. The first
	// three carry a roomy deadline; the last one's is impossibly tight,
	// so the admission pipeline sheds it.
	var jobs []*hera.Job
	for i := 0; i < 4; i++ {
		deadline := uint64(200_000_000)
		if i == 3 {
			deadline = 1
		}
		job, verdict, err := sys.Submit(hera.JobRequest{
			Class:    "Work",
			Method:   "main",
			Name:     fmt.Sprintf("crunch#%d", i),
			Args:     []int32{int32(i + 5)},
			Arrival:  uint64(i) * 100_000,
			Deadline: deadline,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: verdict %s\n", job.Name(), verdict)
		jobs = append(jobs, job)
	}
	if err := sys.Drain(); err != nil {
		log.Fatal(err)
	}
	for _, job := range jobs {
		res, err := job.Wait()
		if err != nil {
			log.Fatal(err)
		}
		if res.Shed {
			fmt.Printf("%s: shed at admission\n", job.Name())
			continue
		}
		fmt.Printf("%s: value=%d cycles=%d (admitted %d) deadline met=%v migrations=%d compiles=%d\n",
			job.Name(), int32(uint32(res.Value)), res.Cycles, res.AdmittedAt,
			res.DeadlineMet, res.Migrations, res.Compiles)
	}
	fmt.Print(sys.Report())
}
