// Adaptive cache split: the paper's §4 closes by suggesting that
// "adaptive sizing of the code and data caches would likely benefit
// many applications". This demo shows why: with a fixed 192 KB
// local-store budget, compress (data-bound) and mpegaudio (code-bound)
// want opposite splits. A tiny adaptive step — run briefly, look at
// which software cache misses more, rebalance — picks the right split
// for each without being told.
//
//	go run ./examples/adaptivecache
package main

import (
	"fmt"
	"log"

	hera "herajvm"
)

const budgetKB = 192

var splits = [][2]int{{152, 40}, {104, 88}, {56, 136}}

func run(name string, dataKB int, scale int) (cycles uint64, dataMissPerK, codeMissPerK float64) {
	spec, err := hera.WorkloadByName(name)
	if err != nil {
		log.Fatal(err)
	}
	prog, err := spec.Build(1, scale)
	if err != nil {
		log.Fatal(err)
	}
	cfg := hera.DefaultConfig()
	cfg.Machine.Topology = hera.PS3Topology(1)
	cfg.DataCache.Size = uint32(dataKB) << 10
	cfg.CodeCache.Size = uint32(budgetKB-dataKB) << 10
	sys, err := hera.NewSystem(cfg, prog)
	if err != nil {
		log.Fatal(err)
	}
	job, _, err := sys.Submit(hera.JobRequest{Class: spec.MainClass, Method: "main"})
	if err != nil {
		log.Fatal(err)
	}
	res, err := job.Wait()
	if err != nil {
		log.Fatal(err)
	}
	st := sys.VM.Machine.CoresOf(hera.SPE)[0].Stats
	perK := func(n uint64) float64 { return 1000 * float64(n) / float64(st.Instrs) }
	return res.Cycles, perK(st.DataMisses), perK(st.CodeMisses)
}

func main() {
	for _, name := range []string{"compress", "mpegaudio"} {
		scale := 1
		fmt.Printf("%s:\n", name)
		best, bestCycles := 0, uint64(0)
		for i, sp := range splits {
			cycles, dm, cm := run(name, sp[0], scale)
			fmt.Printf("  data %3d KB / code %3d KB: %10d cycles (data misses %.2f/Kinstr, code misses %.2f/Kinstr)\n",
				sp[0], budgetKB-sp[0], cycles, dm, cm)
			if bestCycles == 0 || cycles < bestCycles {
				best, bestCycles = i, cycles
			}
		}
		fmt.Printf("  -> best static split: %d/%d\n", splits[best][0], budgetKB-splits[best][0])

		// The adaptive step: probe with the balanced split, then move the
		// budget toward whichever cache missed more.
		_, dm, cm := run(name, 104, scale)
		choice := 104
		if dm > cm*4 { // data misses cost DMA per access; weight them
			choice = 152
		} else if cm > dm {
			choice = 56
		}
		verdict := "kept the balanced split"
		if choice != 104 {
			verdict = fmt.Sprintf("rebalanced to %d/%d", choice, budgetKB-choice)
		}
		match := "matches"
		if choice != splits[best][0] {
			match = "differs from"
		}
		fmt.Printf("  adaptive probe %s; %s the offline best\n\n", verdict, match)
	}
}
