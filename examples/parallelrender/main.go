// Parallel render: the paper's mandelbrot scenario end to end. Worker
// threads (subclasses of java/lang/Thread with an @RunOnSPE run method)
// partition the rows of a fractal render, publish partial checksums
// through a synchronized adder, and the main thread joins them. The
// demo runs the same program on the PPE alone, one SPE and six SPEs,
// printing the Figure 4(a)-style speedups.
//
//	go run ./examples/parallelrender
package main

import (
	"fmt"
	"log"

	hera "herajvm"
)

func run(spes int) (cycles uint64, checksum int32) {
	spec, err := hera.WorkloadByName("mandelbrot")
	if err != nil {
		log.Fatal(err)
	}
	threads := spes
	if threads == 0 {
		threads = 1
	}
	prog, err := spec.Build(threads, 4) // 128x96 render
	if err != nil {
		log.Fatal(err)
	}
	cfg := hera.DefaultConfig()
	cfg.Machine.Topology = hera.PS3Topology(spes)
	sys, err := hera.NewSystem(cfg, prog)
	if err != nil {
		log.Fatal(err)
	}
	job, _, err := sys.Submit(hera.JobRequest{Class: spec.MainClass, Method: "main"})
	if err != nil {
		log.Fatal(err)
	}
	res, err := job.Wait()
	if err != nil {
		log.Fatal(err)
	}
	return res.Cycles, int32(uint32(res.Value))
}

func main() {
	ppeCycles, ppeSum := run(0)
	fmt.Printf("PPE only : %10d cycles  checksum %d\n", ppeCycles, ppeSum)
	for _, n := range []int{1, 6} {
		c, sum := run(n)
		fmt.Printf("%d SPE(s) : %10d cycles  checksum %d  speedup %.2fx\n",
			n, c, sum, float64(ppeCycles)/float64(c))
		if sum != ppeSum {
			log.Fatalf("checksum changed with placement: %d vs %d", sum, ppeSum)
		}
	}
	fmt.Println("\nplacement is transparent: every configuration computed the same image.")
}
