// Quickstart: build a tiny program with the assembler API, run it on
// the simulated Cell machine, and print what the machine did.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	hera "herajvm"
)

func main() {
	prog := hera.NewProgram()
	system := prog.Lookup("java/lang/System")

	// class Main { static int main() { println("hello"); return gcd(252, 105); } }
	cls := prog.NewClass("Main", nil)
	gcd := cls.NewMethod("gcd", hera.Static, hera.Int, hera.Int, hera.Int)
	{
		a := gcd.Asm()
		loop, done := a.NewLabel(), a.NewLabel()
		a.Bind(loop)
		a.LoadI(1)
		a.IfEQ(done)
		// t = b; b = a % b; a = t
		a.LoadI(1)
		a.StoreI(2)
		a.LoadI(0)
		a.LoadI(1)
		a.RemI()
		a.StoreI(1)
		a.LoadI(2)
		a.StoreI(0)
		a.Goto(loop)
		a.Bind(done)
		a.LoadI(0)
		a.Ret()
		a.MustBuild()
	}
	m := cls.NewMethod("main", hera.Static, hera.Int)
	a := m.Asm()
	a.Str("hello from Hera-JVM")
	a.InvokeStatic(system.MethodByName("println"))
	a.ConstI(252)
	a.ConstI(105)
	a.InvokeStatic(gcd)
	a.Ret()
	a.MustBuild()

	sys, err := hera.NewSystem(hera.DefaultConfig(), prog)
	if err != nil {
		log.Fatal(err)
	}
	job, _, err := sys.Submit(hera.JobRequest{Class: "Main", Method: "main"})
	if err != nil {
		log.Fatal(err)
	}
	res, err := job.Wait()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("output: %s", res.Output)
	fmt.Printf("gcd(252, 105) = %d\n", int32(uint32(res.Value)))
	fmt.Printf("took %d simulated cycles (%.3f ms at 3.2 GHz)\n\n", res.Cycles, res.Millis)
	fmt.Print(sys.Report())
}
