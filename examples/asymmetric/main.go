// Asymmetric machines: the seed's machine model hardwired the PS3 shape
// (one PPE + N SPEs). With declarative topologies the same unmodified
// program runs on any core mix — a PPE-only host, a dual-PPE server, an
// asymmetric 2 PPE + 2 SPE part, or an SPE-heavy accelerator — and the
// runtime, not the programmer, maps threads onto whatever cores exist.
// The checksum is identical on every machine; only the time changes.
//
//	go run ./examples/asymmetric
package main

import (
	"fmt"
	"log"

	hera "herajvm"
)

var machines = []string{
	"ppe:1",       // general-purpose host, no accelerators
	"ppe:2",       // symmetric dual-PPE server
	"ppe:2,spe:2", // asymmetric: two hosts, two accelerators
	"ppe:1,spe:6", // the PS3 default
}

func main() {
	spec, err := hera.WorkloadByName("mandelbrot")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("same program, same checksum - only the machine declaration changes:")
	for _, m := range machines {
		topo, err := hera.ParseTopology(m)
		if err != nil {
			log.Fatal(err)
		}
		prog, err := spec.Build(topo.DefaultWorkers(), 2)
		if err != nil {
			log.Fatal(err)
		}
		cfg := hera.DefaultConfig()
		cfg.Machine.Topology = topo
		sys, err := hera.NewSystem(cfg, prog)
		if err != nil {
			log.Fatal(err)
		}
		job, _, err := sys.Submit(hera.JobRequest{Class: spec.MainClass, Method: "main"})
		if err != nil {
			log.Fatal(err)
		}
		res, err := job.Wait()
		if err != nil {
			log.Fatal(err)
		}
		var ppeInstrs, speInstrs uint64
		for _, c := range sys.VM.Machine.CoresOf(hera.PPE) {
			ppeInstrs += c.Stats.Instrs
		}
		for _, c := range sys.VM.Machine.CoresOf(hera.SPE) {
			speInstrs += c.Stats.Instrs
		}
		fmt.Printf("%-14s checksum=%-8d cycles=%-10d ppe-instrs=%-9d spe-instrs=%-9d\n",
			m, int32(uint32(res.Value)), res.Cycles, ppeInstrs, speInstrs)
	}
}
