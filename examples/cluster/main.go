// Cluster: boot a fleet of shards — each a full System with its own
// machine shape — behind a dispatcher that routes every job to the
// shard predicting the earliest completion from its scheduler's drain
// estimates. The shards advance concurrently on their own goroutines
// under an epoch barrier, yet the merged result stream is the same
// bytes the fleet produces when advanced serially: host parallelism
// changes wall-clock time only, never the simulation.
//
//	go run ./examples/cluster
package main

import (
	"fmt"
	"log"

	hera "herajvm"
)

// build assembles one shard's program: a class whose main spins on an
// SPE-annotated kernel. Each shard needs its own copy — shards share
// no mutable state, which is what lets them advance in parallel.
func build() (*hera.Program, error) {
	prog := hera.NewProgram()
	cls := prog.NewClass("Work", nil)
	crunch := cls.NewMethod("crunch", hera.Static, hera.Int, hera.Int).
		Annotate(hera.RunOnSPE)
	{
		a := crunch.Asm()
		loop, done := a.NewLabel(), a.NewLabel()
		a.ConstI(0)
		a.StoreI(1)
		a.Bind(loop)
		a.LoadI(1)
		a.ConstI(150_000)
		a.IfICmpGE(done)
		a.Inc(1, 1)
		a.Goto(loop)
		a.Bind(done)
		a.LoadI(0)
		a.LoadI(0)
		a.MulI()
		a.Ret()
		a.MustBuild()
	}
	m := cls.NewMethod("main", hera.Static, hera.Int, hera.Int)
	a := m.Asm()
	a.LoadI(0)
	a.InvokeStatic(crunch)
	a.Ret()
	a.MustBuild()
	return prog, nil
}

func main() {
	// Two shards with different machines: a three-kind box and a
	// classic PS3 shape. The dispatcher weighs them by predicted
	// completion, not by assumption — the bigger SPE pool tends to win
	// jobs until its queue catches up.
	shapes := []string{"ppe:1,spe:2", "ppe:1,spe:6"}
	var shards []hera.ShardConfig
	for _, shape := range shapes {
		topo, err := hera.ParseTopology(shape)
		if err != nil {
			log.Fatal(err)
		}
		cfg := hera.DefaultConfig()
		cfg.Machine.Topology = topo
		cfg.Scheduler = "migrate"
		shards = append(shards, hera.ShardConfig{Cfg: cfg, Build: build})
	}

	cl, err := hera.BootCluster(hera.ClusterConfig{Shed: true}, shards)
	if err != nil {
		log.Fatal(err)
	}

	// Eight jobs arriving 50k cycles apart, each with a roomy deadline.
	for i := 0; i < 8; i++ {
		job, verdict, err := cl.Submit(hera.JobRequest{
			Class:    "Work",
			Method:   "main",
			Name:     fmt.Sprintf("crunch#%d", i),
			Args:     []int32{int32(i + 3)},
			Arrival:  uint64(i) * 50_000,
			Deadline: 200_000_000,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: shard %d, verdict %s\n", job.Req.Name, job.Shard, verdict)
	}
	if err := cl.Drain(); err != nil {
		log.Fatal(err)
	}

	results, err := cl.Results()
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		fmt.Printf("%s: shard %d value=%d latency=%d cycles met=%v\n",
			r.Name, r.Shard, int32(uint32(r.Res.Value)), r.Res.Cycles, r.Res.DeadlineMet)
	}

	report, err := cl.Report()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report)
}
