// Annotations: the paper's core idea in one demo. The same
// floating-point kernel runs twice — once unannotated (it stays on the
// general-purpose PPE) and once tagged @FloatIntensive (the runtime
// transparently migrates the thread to an SPE at the call and back at
// the return). The program text is otherwise identical; only the hint
// changes where it runs, and the result is bit-identical.
//
//	go run ./examples/annotations
package main

import (
	"fmt"
	"log"

	hera "herajvm"
)

// buildProgram creates Main.main calling a polynomial-evaluation kernel
// `calls` times; when annotate is set the kernel carries FloatIntensive.
func buildProgram(annotate bool) *hera.Program {
	prog := hera.NewProgram()
	cls := prog.NewClass("Main", nil)

	horner := cls.NewMethod("horner", hera.Static, hera.Double, hera.Double)
	if annotate {
		horner.Annotate(hera.FloatIntensive)
	}
	{
		a := horner.Asm()
		// Evaluate a fixed degree-3000 polynomial at x by Horner's rule.
		// locals: 0=x 1=acc 2=i
		loop, done := a.NewLabel(), a.NewLabel()
		a.ConstD(1.0)
		a.StoreD(1)
		a.ConstI(0)
		a.StoreI(2)
		a.Bind(loop)
		a.LoadI(2)
		a.ConstI(3000)
		a.IfICmpGE(done)
		a.LoadD(1)
		a.LoadD(0)
		a.MulD()
		a.ConstD(0.5)
		a.AddD()
		a.StoreD(1)
		a.Inc(2, 1)
		a.Goto(loop)
		a.Bind(done)
		a.LoadD(1)
		a.Ret()
		a.MustBuild()
	}

	m := cls.NewMethod("main", hera.Static, hera.Int)
	a := m.Asm()
	loop, done := a.NewLabel(), a.NewLabel()
	a.ConstD(0)
	a.StoreD(0)
	a.ConstI(0)
	a.StoreI(2)
	a.Bind(loop)
	a.LoadI(2)
	a.ConstI(40)
	a.IfICmpGE(done)
	a.LoadD(0)
	a.ConstD(0.999)
	a.InvokeStatic(horner)
	a.AddD()
	a.StoreD(0)
	a.Inc(2, 1)
	a.Goto(loop)
	a.Bind(done)
	a.LoadD(0)
	a.D2I()
	a.Ret()
	a.MustBuild()
	return prog
}

func run(annotate bool) {
	sys, err := hera.NewSystem(hera.DefaultConfig(), buildProgram(annotate))
	if err != nil {
		log.Fatal(err)
	}
	job, _, err := sys.Submit(hera.JobRequest{Class: "Main", Method: "main"})
	if err != nil {
		log.Fatal(err)
	}
	res, err := job.Wait()
	if err != nil {
		log.Fatal(err)
	}
	where := "unannotated (stays on PPE)"
	if annotate {
		where = "@FloatIntensive (migrates to SPE)"
	}
	ppe := sys.VM.Machine.CoresOf(hera.PPE)[0].Stats
	var speInstrs uint64
	for _, s := range sys.VM.Machine.CoresOf(hera.SPE) {
		speInstrs += s.Stats.Instrs
	}
	fmt.Printf("%-36s result=%d cycles=%-10d ppe-instrs=%-8d spe-instrs=%-8d migrations out=%d\n",
		where, int32(uint32(res.Value)), res.Cycles, ppe.Instrs, speInstrs, ppe.MigrationsOut)
}

func main() {
	fmt.Println("same program, same result - the annotation only moves the work:")
	run(false)
	run(true)
}
