// Command herabench regenerates the paper's evaluation figures
// (Figures 4(a), 4(b), 5, 6, 7) and the DESIGN.md ablations (A1-A4) as
// text tables.
//
// Examples:
//
//	herabench                 # all figures, quick sizes
//	herabench -full           # all figures, paper-shaped sizes
//	herabench -fig 4a         # just Figure 4(a)
//	herabench -fig a3 -v      # ablation A3 with progress logging
//	herabench -fig steal      # calendar vs work-stealing scheduler
//	herabench -fig migrate    # stealing vs cost-gated cross-kind migration
//	herabench -fig serve      # open-loop serving: trace-driven jobs, shedding off vs on
//	herabench -fig serve -trace bursty -jobs 40 -cadence 250000  # heavier churn
//	herabench -fig serve -json BENCH_serve.json         # goodput/p99 artifact
//	herabench -fig 4a -sched steal                      # any figure, stealing scheduler
//	herabench -full -fig topo -topology "ppe:1,spe:6;ppe:1,spe:4,vpu:2"
//	herabench -fig simspeed                             # simulator wall-clock: fast path on vs off
//	herabench -fig simspeed -json BENCH_simspeed.json -baseline testdata/BENCH_simspeed_baseline.json
//	herabench -fig simspeed -nowall                     # deterministic columns only (replay gates)
//	herabench -fig cluster                              # N parallel shards vs serial advancement
//	herabench -fig cluster -shards "ppe:1,spe:6;ppe:1,spe:4,vpu:2"  # heterogeneous fleet
//	herabench -fig cluster -json BENCH_cluster.json -clustermin 2.0 # CI scaling gate
//	herabench -fig cluster -handoff                     # inter-shard hand-off arm + replay gate
//	herabench -fig cluster -timeout 10m -cpuprofile cpu.pprof       # guarded + profiled
//	herabench -fig kernels                              # data-parallel offload: scalar vs Parallel.forRange
//	herabench -fig kernels -json BENCH_kernels.json -kernelmin 2.0  # CI offload gate
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"herajvm/internal/cell"
	"herajvm/internal/experiments"
)

// table is any experiment result that renders itself.
type table interface{ Table() string }

func main() {
	var (
		fig   = flag.String("fig", "all", "4a | 4b | 5 | 6 | 7 | a1 | a2 | a3 | a4 | topo | steal | migrate | serve | simspeed | cluster | kernels | all")
		full  = flag.Bool("full", false, "paper-shaped workload sizes (slower)")
		sched = flag.String("sched", "", "scheduler for every run: calendar | steal | migrate (default: calendar)")
		topos = flag.String("topology", "",
			`semicolon-separated machine shapes for the topo/steal/migrate/serve sweeps, e.g. "ppe:1,spe:6;ppe:1,spe:4,vpu:2"`)
		nowall   = flag.Bool("nowall", false, "simspeed/cluster: omit wall-clock columns so output replays byte for byte")
		jsonPath = flag.String("json", "", "write the simspeed, serve or cluster sweep as JSON (BENCH_*.json shape) to this path")
		baseline = flag.String("baseline", "", "simspeed: compare speedups against this baseline JSON; exit 1 on regression")
		minscale = flag.Float64("clustermin", 0, "cluster: minimum parallel-vs-serial wall-clock speedup; exit 1 below it (0 = no gate)")
		kernmin  = flag.Float64("kernelmin", 0, "kernels: minimum matmul kernel-vs-scalar cycle speedup on a VPU pool; exit 1 below it (0 = no gate)")
		timeout  = flag.Duration("timeout", 0, "fail any figure still running after this long instead of hanging (0 = no limit)")
		cpuprof  = flag.String("cpuprofile", "", "write a CPU profile of the figure runs to this path")
		memprof  = flag.String("memprofile", "", "write a heap profile (taken after the figure runs) to this path")
		verb     = flag.Bool("v", false, "log per-run progress to stderr")
	)
	serveFlags := experiments.BindServeFlags(flag.CommandLine)
	flag.Parse()

	opt := experiments.Quick()
	if *full {
		opt = experiments.Full()
	}
	if *verb {
		opt.Progress = os.Stderr
	}
	opt.Scheduler = *sched
	if err := serveFlags.Apply(&opt); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	opt.NoWall = *nowall
	if *topos != "" {
		list, err := cell.ParseTopologyList(*topos)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		opt.Topologies = list
	}
	if *timeout > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		opt.Ctx = ctx
	}
	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprof != "" {
		path := *memprof
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // up-to-date allocation statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}()
	}

	type experiment struct {
		id  string
		run func(experiments.Options) (table, error)
	}
	// simspeed's, serve's and cluster's results are kept concrete for
	// the -json / -baseline / -clustermin post-processing below.
	var simspeed *experiments.SimSpeed
	var serve *experiments.ServeSweep
	var clusterSweep *experiments.ClusterSweep
	var kernels *experiments.KernelsSweep
	all := []experiment{
		{"4a", func(o experiments.Options) (table, error) { return experiments.RunFig4a(o) }},
		{"4b", func(o experiments.Options) (table, error) { return experiments.RunFig4b(o) }},
		{"5", func(o experiments.Options) (table, error) { return experiments.RunFig5(o) }},
		{"6", func(o experiments.Options) (table, error) { return experiments.RunFig6(o) }},
		{"7", func(o experiments.Options) (table, error) { return experiments.RunFig7(o) }},
		{"a1", func(o experiments.Options) (table, error) { return experiments.RunA1(o) }},
		{"a2", func(o experiments.Options) (table, error) { return experiments.RunA2(o) }},
		{"a3", func(o experiments.Options) (table, error) { return experiments.RunA3(o) }},
		{"a4", func(o experiments.Options) (table, error) { return experiments.RunA4(o) }},
		{"topo", func(o experiments.Options) (table, error) { return experiments.RunTopologySweep(o) }},
		{"steal", func(o experiments.Options) (table, error) { return experiments.RunStealSweep(o) }},
		{"migrate", func(o experiments.Options) (table, error) { return experiments.RunMigrateSweep(o) }},
		{"serve", func(o experiments.Options) (table, error) {
			s, err := experiments.RunServe(o)
			if err == nil {
				serve = s
			}
			return s, err
		}},
		{"simspeed", func(o experiments.Options) (table, error) {
			s, err := experiments.RunSimSpeed(o)
			if err == nil {
				simspeed = s
			}
			return s, err
		}},
		{"cluster", func(o experiments.Options) (table, error) {
			s, err := experiments.RunCluster(o)
			if err == nil {
				clusterSweep = s
			}
			return s, err
		}},
		{"kernels", func(o experiments.Options) (table, error) {
			s, err := experiments.RunKernels(o)
			if err == nil {
				kernels = s
			}
			return s, err
		}},
	}

	want := strings.ToLower(*fig)
	ran := 0
	for _, e := range all {
		if want != "all" && want != e.id {
			continue
		}
		t, err := e.run(opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figure %s: %v\n", e.id, err)
			os.Exit(1)
		}
		fmt.Println(t.Table())
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", *fig)
		os.Exit(2)
	}

	// -json writes whichever JSON-bearing sweep ran; with fig=all the
	// priority is simspeed > serve > cluster, keeping the existing
	// bench pipeline's shape.
	if *jsonPath != "" && simspeed == nil && serve != nil {
		out, err := serve.JSON()
		if err == nil {
			err = os.WriteFile(*jsonPath, out, 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "serve json: %v\n", err)
			os.Exit(1)
		}
	}
	if kernels != nil {
		if *jsonPath != "" && simspeed == nil && serve == nil && clusterSweep == nil {
			out, err := kernels.JSON()
			if err == nil {
				err = os.WriteFile(*jsonPath, out, 0o644)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "kernels json: %v\n", err)
				os.Exit(1)
			}
		}
		if *kernmin > 0 {
			if err := kernels.CheckKernelMin(*kernmin); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Println("kernel offload gate: ok")
		}
	}
	if clusterSweep != nil {
		if *jsonPath != "" && simspeed == nil && serve == nil {
			out, err := clusterSweep.JSON()
			if err == nil {
				err = os.WriteFile(*jsonPath, out, 0o644)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "cluster json: %v\n", err)
				os.Exit(1)
			}
		}
		if *minscale > 0 {
			if err := clusterSweep.CheckSpeedup(*minscale); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Println("cluster scaling gate: ok")
		}
		if serveFlags.Handoff {
			if err := clusterSweep.CheckHandoff(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Println("cluster hand-off gate: ok")
		}
	}
	if simspeed != nil {
		if *jsonPath != "" {
			out, err := simspeed.JSON()
			if err == nil {
				err = os.WriteFile(*jsonPath, out, 0o644)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "simspeed json: %v\n", err)
				os.Exit(1)
			}
		}
		if *baseline != "" {
			ref, err := os.ReadFile(*baseline)
			if err != nil {
				fmt.Fprintf(os.Stderr, "simspeed baseline: %v\n", err)
				os.Exit(1)
			}
			if err := simspeed.CheckBaseline(ref); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Println("simspeed baseline gate: ok")
		}
	}
}
