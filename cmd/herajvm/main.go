// Command herajvm runs one of the paper's workloads on a configured
// simulated Cell machine and prints the run's statistics: how the
// runtime placed threads, what the software caches did, and where the
// cycles went.
//
// Examples:
//
//	herajvm -workload mandelbrot -spes 6
//	herajvm -workload compress -spes 1 -scale 2
//	herajvm -workload mpegaudio -spes 0              # PPE only
//	herajvm -workload compress -policy monitor       # runtime-monitoring placement
//	herajvm -workload mandelbrot -sched steal        # same-kind work-stealing scheduler
//	herajvm -workload compress -sched migrate        # + cost-gated cross-kind migration
//	herajvm -workload mandelbrot -topology ppe:2,spe:2       # asymmetric machine
//	herajvm -workload mandelbrot -topology ppe:1,spe:4,vpu:2 # three core kinds
//	herajvm -workload matmul -topology ppe:1,spe:4,vpu:2     # Parallel.forRange kernel launch
//
// With -jobs or -trace set, herajvm serves the workload open-loop
// instead of running it once: jobs arrive on a seeded trace, each
// carrying a deadline, and the report shows admission verdicts, shed
// counts and latency percentiles under the chosen scheduler. The
// -jobs/-cadence/-trace/-seed/-deadline/-maxpending flags are shared
// with herabench and behave identically:
//
//	herajvm -workload compress -sched migrate -trace poisson -jobs 12
//	herajvm -workload mandelbrot -trace bursty -jobs 8 -seed 7
//
// With -shards set, the trace is served by a cluster instead of one
// machine: each shard is a full System (its own topology, scheduler,
// admission pipeline) and a dispatcher routes every arrival to the
// shard predicting the earliest completion, shedding only when no
// shard can meet the deadline:
//
//	herajvm -workload compress -shards "ppe:1,spe:4,vpu:2;ppe:1,spe:6" -jobs 16
package main

import (
	"flag"
	"fmt"
	"os"

	hera "herajvm"
	"herajvm/internal/experiments"
)

func main() {
	var (
		workload = flag.String("workload", "mandelbrot",
			"compress | mpegaudio | mandelbrot, or a kernel workload: matmul | nbody | kmeans")
		spes     = flag.Int("spes", 6, "number of SPE cores beside one PPE (0 = run everything on the PPE)")
		topology = flag.String("topology", "", `machine topology, e.g. "ppe:1,spe:6" (overrides -spes)`)
		threads  = flag.Int("threads", 0, "worker threads (default: one per worker core)")
		scale    = flag.Int("scale", 0, "workload scale (default: workload-specific)")
		policy   = flag.String("policy", "annotation", "annotation | monitor | <kind> (ppe, spe, vpu: pin all threads to that kind)")
		sched    = flag.String("sched", "calendar", "scheduler: calendar | steal (same-kind work stealing) | migrate (stealing + cost-gated cross-kind migration)")
		dataKB   = flag.Int("datacache", 104, "SPE data cache size in KB")
		codeKB   = flag.Int("codecache", 88, "SPE code cache size in KB")
		clockHz  = flag.Float64("clockhz", 3.2e9, "core clock rate in Hz for cycle-to-time conversion")
		report   = flag.Bool("report", true, "print the machine report")
	)
	serveFlags := experiments.BindServeFlags(flag.CommandLine)
	flag.Parse()

	spec, err := hera.WorkloadByName(*workload)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *scale == 0 {
		*scale = spec.DefaultScale
	}

	topo := hera.PS3Topology(*spes)
	if *topology != "" {
		topo, err = hera.ParseTopology(*topology)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	if *threads == 0 {
		*threads = topo.DefaultWorkers()
	}

	// Serve mode: play an open-loop arrival trace of this workload
	// through the admission pipeline instead of one one-shot run. With
	// -shards the trace is dispatched across a cluster of Systems.
	if serveFlags.Jobs > 0 || serveFlags.Trace != "" || serveFlags.Shards != "" {
		opt := experiments.Quick()
		if err := serveFlags.Apply(&opt); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		opt.Scheduler = *sched
		opt.Topologies = []hera.Topology{topo}
		if len(opt.ServeWorkloads) == 0 {
			opt.ServeWorkloads = []string{*workload}
		}
		if serveFlags.Shards != "" {
			sweep, err := experiments.RunCluster(opt)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Print(sweep.Table())
			return
		}
		sweep, err := experiments.RunServe(opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(sweep.Table())
		return
	}

	cfg := hera.DefaultConfig()
	cfg.Machine.Topology = topo
	cfg.Machine.ClockHz = *clockHz
	cfg.Scheduler = *sched // validated when the system boots
	cfg.DataCache.Size = uint32(*dataKB) << 10
	cfg.CodeCache.Size = uint32(*codeKB) << 10
	switch *policy {
	case "annotation":
		cfg.Policy = hera.AnnotationPolicy{}
	case "monitor":
		cfg.Policy = hera.DefaultMonitoringPolicy()
	default:
		// Any registered kind name pins every thread to that kind.
		kind, err := hera.ParseCoreKind(*policy)
		if err != nil {
			fmt.Fprintf(os.Stderr, "unknown policy %q (want annotation, monitor, or a core kind name)\n", *policy)
			os.Exit(2)
		}
		cfg.Policy = hera.FixedPolicy{Kind: kind}
	}

	prog, err := spec.Build(*threads, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	sys, err := hera.NewSystem(cfg, prog)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	job, _, err := sys.Submit(hera.JobRequest{Class: spec.MainClass, Method: "main"})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	res, err := job.Wait()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	checksum := int32(uint32(res.Value))
	want := spec.Reference(*threads, *scale)
	fmt.Printf("%s: %d threads, machine %s, scale %d\n", spec.Name, *threads, topo, *scale)
	fmt.Printf("completed in %d cycles (%.2f ms at %.2f GHz)\n",
		res.Cycles, res.Millis, cfg.Machine.EffectiveClockHz()/1e9)
	fmt.Printf("checksum %d (%s)\n", checksum, validity(checksum == want))
	if res.Output != "" {
		fmt.Printf("--- output ---\n%s", res.Output)
	}
	if *report {
		fmt.Printf("--- machine report ---\n%s", sys.Report())
	}
	if checksum != want {
		os.Exit(1)
	}
}

func validity(ok bool) string {
	if ok {
		return "matches reference"
	}
	return "MISMATCH vs reference"
}
